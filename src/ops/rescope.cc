#include "src/ops/rescope.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/check.h"
#include "src/common/sync.h"
#include "src/common/hash.h"
#include "src/core/order.h"
#include "src/obs/metrics.h"

namespace xst {

namespace {

// Memo cache for RescopeByScope. Interned nodes are immutable and immortal,
// so a ⟨A, σ⟩ → result entry can never go stale; pointer identity of the key
// pair is structural identity of the operands.
//
// The cache is deliberately LOSSY: a fixed-size, 2-way set-associative array
// (like a hardware cache), not a growing hash map. Bulk operators stream
// millions of distinct one-shot keys through rescoping; a map would pay an
// allocation plus rehashing per miss and grow without bound, which measured
// ~2× slower than no cache at all on unique-key joins. A fixed array caps
// the miss cost at one indexed probe and one overwrite, keeps memory at a
// few MB forever, and still captures the hot recurring operands (spec
// tuples, shared key values) that dominate real workloads. Sharded like the
// interner so parallel kernels don't serialize on one mutex.
struct MemoSlot {
  const internal::Node* a = nullptr;
  const internal::Node* sigma = nullptr;
  const internal::Node* result = nullptr;
};

constexpr size_t kMemoWays = 2;
constexpr size_t kMemoSetsPerShard = size_t{1} << 12;
constexpr size_t kMemoShards = 16;  // total: 16 × 4096 × 2 slots ≈ 3 MB

struct MemoShard {
  Mutex memo_mu XST_LOCK_RANK(45);
  MemoSlot slots[kMemoSetsPerShard * kMemoWays] XST_GUARDED_BY(memo_mu);
};

MemoShard* MemoShards() {
  static MemoShard* shards = new MemoShard[kMemoShards];  // leaked with the arena
  return shards;
}

// Registry-backed hit/miss counters (one relaxed RMW per probe, same cost
// as the std::atomic fields they replaced, but visible in DumpMetricsJson
// and resettable for per-query attribution).
obs::Counter& MemoHits() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kRescopeMemoHitsCounter);
  return c;
}

obs::Counter& MemoMisses() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kRescopeMemoMissesCounter);
  return c;
}

uint64_t MemoHash(const internal::Node* a, const internal::Node* sigma) {
  return HashCombine(a->hash, sigma->hash);
}

// Escape hatch for A/B benchmarking of the memo itself.
bool MemoDisabled() {
  static const bool disabled = std::getenv("XST_NO_RESCOPE_MEMO") != nullptr;
  return disabled;
}

}  // namespace

XSet RescopeByScope(const XSet& a, const XSet& sigma) {
  // Trivial operands produce ∅ and skip the cache: atoms have no
  // memberships, and an empty σ drops everything.
  if (a.cardinality() == 0 || sigma.cardinality() == 0) return XSet::Empty();
  const bool use_memo = !MemoDisabled();
  const internal::Node* na = a.node();
  const internal::Node* ns = sigma.node();
  const uint64_t h = MemoHash(na, ns);
  MemoShard& shard = MemoShards()[(h >> 48) & (kMemoShards - 1)];
  const size_t set_base = (h & (kMemoSetsPerShard - 1)) * kMemoWays;
  if (use_memo) {
    MutexLock lock(&shard.memo_mu);
    MemoSlot* set = &shard.slots[set_base];
    for (size_t w = 0; w < kMemoWays; ++w) {
      if (set[w].a == na && set[w].sigma == ns) {
        MemoHits().Increment();
        // Keep the hit in way 0 so the colder way is the eviction victim.
        if (w != 0) std::swap(set[0], set[w]);
        return XSet::FromNode(set[0].result);
      }
    }
  }
  MemoMisses().Increment();
  std::vector<Membership> out;
  out.reserve(a.cardinality());
  AppendRescopeByScopeRaw(a, sigma, &out);
  // Validate before the memo stores the node: a bad entry would replay the
  // corruption on every future hit.
  XSet result = XST_VALIDATE(XSet::FromMembers(std::move(out)));
  if (use_memo) {
    // Insert into way 1 (the LRU victim); a racing compute of the same key
    // wrote the identical interned node, so lost races are harmless.
    MutexLock lock(&shard.memo_mu);
    shard.slots[set_base + 1] = MemoSlot{na, ns, result.node()};
  }
  return result;
}

void AppendRescopeByScopeRaw(const XSet& a, const XSet& sigma,
                             std::vector<Membership>* out) {
  // x ∈ₛ A contributes x^w for every w with s ∈_w σ, i.e. for every
  // membership of σ whose element equals the old scope s. σ's members are
  // sorted by (element, scope), so the matches for one old scope are a
  // contiguous run found by binary search — no temporary vectors.
  if (a.cardinality() == 0 || sigma.cardinality() == 0) return;
  auto sms = sigma.members();
  for (const Membership& m : a.members()) {
    auto it = std::lower_bound(sms.begin(), sms.end(), m.scope,
                               [](const Membership& sm, const XSet& s) {
                                 return Compare(sm.element, s) < 0;
                               });
    for (; it != sms.end() && it->element == m.scope; ++it) {
      out->push_back(Membership{m.element, it->scope});
    }
  }
}

RescopeCacheStats GetRescopeCacheStats() {
  RescopeCacheStats stats;
  stats.hits = MemoHits().value();
  stats.misses = MemoMisses().value();
  for (size_t i = 0; i < kMemoShards; ++i) {
    MemoShard& shard = MemoShards()[i];
    MutexLock lock(&shard.memo_mu);
    for (const MemoSlot& slot : shard.slots) {
      if (slot.result != nullptr) ++stats.entries;
    }
  }
  return stats;
}

void ResetRescopeCacheStats() {
  MemoHits().Reset();
  MemoMisses().Reset();
}

XSet RescopeByElement(const XSet& a, const XSet& sigma) {
  // x ∈ₛ A contributes x^w for every element w of σ carried under scope s.
  // σ is indexed by scope once up front so the pass over A is a lookup.
  std::vector<Membership> out;
  if (a.cardinality() == 0 || sigma.cardinality() == 0) return XSet::Empty();
  // (scope of σ-membership, its element), sorted by scope for binary search.
  std::vector<std::pair<XSet, XSet>> by_scope;
  by_scope.reserve(sigma.cardinality());
  for (const Membership& m : sigma.members()) {
    by_scope.push_back({m.scope, m.element});
  }
  std::sort(by_scope.begin(), by_scope.end(), [](const auto& p, const auto& q) {
    int c = Compare(p.first, q.first);
    if (c != 0) return c < 0;
    return Compare(p.second, q.second) < 0;
  });
  for (const Membership& m : a.members()) {
    auto it = std::lower_bound(by_scope.begin(), by_scope.end(), m.scope,
                               [](const auto& p, const XSet& s) {
                                 return Compare(p.first, s) < 0;
                               });
    for (; it != by_scope.end() && it->first == m.scope; ++it) {
      out.push_back(Membership{m.element, it->second});
    }
  }
  return XST_VALIDATE(XSet::FromMembers(std::move(out)));
}

namespace internal {

std::vector<RescopeMemoEntry> SnapshotRescopeMemo() {
  std::vector<RescopeMemoEntry> entries;
  for (size_t i = 0; i < kMemoShards; ++i) {
    MemoShard& shard = MemoShards()[i];
    MutexLock lock(&shard.memo_mu);
    for (const MemoSlot& slot : shard.slots) {
      if (slot.result == nullptr) continue;
      entries.push_back(RescopeMemoEntry{XSet::FromNode(slot.a), XSet::FromNode(slot.sigma),
                                         XSet::FromNode(slot.result)});
    }
  }
  return entries;
}

bool PoisonRescopeMemoEntryForTest(const XSet& a, const XSet& sigma, const XSet& bogus) {
  const internal::Node* na = a.node();
  const internal::Node* ns = sigma.node();
  const uint64_t h = MemoHash(na, ns);
  MemoShard& shard = MemoShards()[(h >> 48) & (kMemoShards - 1)];
  MutexLock lock(&shard.memo_mu);
  MemoSlot* set = &shard.slots[(h & (kMemoSetsPerShard - 1)) * kMemoWays];
  for (size_t w = 0; w < kMemoWays; ++w) {
    if (set[w].a == na && set[w].sigma == ns) {
      set[w].result = bogus.node();
      return true;
    }
  }
  return false;
}

void ClearRescopeMemoForTest() {
  for (size_t i = 0; i < kMemoShards; ++i) {
    MemoShard& shard = MemoShards()[i];
    MutexLock lock(&shard.memo_mu);
    for (MemoSlot& slot : shard.slots) slot = MemoSlot{};
  }
}

}  // namespace internal

}  // namespace xst
