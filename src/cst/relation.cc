#include "src/cst/relation.h"

#include "src/ops/domain.h"
#include "src/ops/image.h"
#include "src/ops/restrict.h"
#include "src/ops/tuple.h"

namespace xst {
namespace cst {

namespace {

// Decomposes a relation member into its pair components; false if malformed.
bool PairParts(const Membership& m, XSet* first, XSet* second) {
  if (!m.scope.empty()) return false;
  std::vector<XSet> parts;
  if (!TupleElements(m.element, &parts) || parts.size() != 2) return false;
  *first = parts[0];
  *second = parts[1];
  return true;
}

}  // namespace

bool IsRelation(const XSet& r) {
  if (!r.is_set()) return false;
  XSet first, second;
  for (const Membership& m : r.members()) {
    if (!PairParts(m, &first, &second)) return false;
  }
  return true;
}

XSet Image(const XSet& r, const XSet& a) {
  std::vector<Membership> out;
  XSet first, second;
  for (const Membership& m : r.members()) {
    if (!PairParts(m, &first, &second)) continue;
    if (a.ContainsClassical(first)) out.push_back(Membership{second, XSet::Empty()});
  }
  return XSet::FromMembers(std::move(out));
}

XSet Restriction(const XSet& r, const XSet& a) {
  std::vector<Membership> out;
  XSet first, second;
  for (const Membership& m : r.members()) {
    if (!PairParts(m, &first, &second)) continue;
    if (a.ContainsClassical(first)) out.push_back(m);
  }
  return XSet::FromMembers(std::move(out));
}

XSet Domain1(const XSet& r) {
  std::vector<Membership> out;
  XSet first, second;
  for (const Membership& m : r.members()) {
    if (!PairParts(m, &first, &second)) continue;
    out.push_back(Membership{first, XSet::Empty()});
  }
  return XSet::FromMembers(std::move(out));
}

XSet Domain2(const XSet& r) {
  std::vector<Membership> out;
  XSet first, second;
  for (const Membership& m : r.members()) {
    if (!PairParts(m, &first, &second)) continue;
    out.push_back(Membership{second, XSet::Empty()});
  }
  return XSet::FromMembers(std::move(out));
}

XSet WrapUnary(const XSet& a) {
  std::vector<Membership> out;
  out.reserve(a.cardinality());
  for (const Membership& m : a.members()) {
    out.push_back(Membership{XSet::Tuple({m.element}), m.scope});
  }
  return XSet::FromMembers(std::move(out));
}

XSet UnwrapUnary(const XSet& a) {
  std::vector<Membership> out;
  out.reserve(a.cardinality());
  for (const Membership& m : a.members()) {
    std::vector<XSet> parts;
    if (TupleElements(m.element, &parts) && parts.size() == 1) {
      out.push_back(Membership{parts[0], m.scope});
    }
  }
  return XSet::FromMembers(std::move(out));
}

XSet ImageViaXst(const XSet& r, const XSet& a) {
  return UnwrapUnary(ImageStd(r, WrapUnary(a)));
}

XSet RestrictionViaXst(const XSet& r, const XSet& a) {
  return SigmaRestrict(r, Sigma::Std().s1, WrapUnary(a));
}

XSet DomainViaXst(const XSet& r, int k) {
  XSet spec = XSet::Tuple({XSet::Int(k)});
  return UnwrapUnary(SigmaDomain(r, spec));
}

}  // namespace cst
}  // namespace xst
