// Classical set theory (CST) relation operations (paper §3).
//
// CST relations are encoded as classical extended sets of XST ordered pairs:
// R = { ⟨x,y⟩^∅, … } with ⟨x,y⟩ = {x^1, y^2}. The operations here implement
// Definitions 3.1–3.6 *directly* (straight iteration over pairs); the
// ...ViaXst variants compute the same results through the XST image
// machinery, which is how the library demonstrates that CST behavior is
// preserved under the extension (the paper's compatibility claim).
//
// Encoding note: CST operands (the A in R[A]) are classical sets of
// elements. XST restriction probes with subset-embedding of 1-tuples, so the
// ViaXst variants wrap elements into 1-tuples on the way in and unwrap on
// the way out.

#pragma once

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {
namespace cst {

/// \brief True iff every member of r is an ordered pair under empty scope.
bool IsRelation(const XSet& r);

/// \brief Def 3.1 / 3.6 — R[A] = { y : ∃x (x ∈ A & ⟨x,y⟩ ∈ R) }.
XSet Image(const XSet& r, const XSet& a);

/// \brief Def 3.3 — R|A = { ⟨x,y⟩ ∈ R : x ∈ A }.
XSet Restriction(const XSet& r, const XSet& a);

/// \brief Def 3.4 — 𝔇₁(R) = { x : ∃y ⟨x,y⟩ ∈ R }.
XSet Domain1(const XSet& r);

/// \brief Def 3.5 — 𝔇₂(R) = { y : ∃x ⟨x,y⟩ ∈ R }.
XSet Domain2(const XSet& r);

/// \brief R[A] computed as 𝔇₂(R|A) through the XST operators (Def 3.6 via
/// Def 7.1). Equal to Image(r, a) on every relation — tested property.
XSet ImageViaXst(const XSet& r, const XSet& a);

/// \brief R|A through XST σ-restriction.
XSet RestrictionViaXst(const XSet& r, const XSet& a);

/// \brief 𝔇ₖ(R) through XST σ-domain (k = 1 or 2).
XSet DomainViaXst(const XSet& r, int k);

/// \brief Wraps each element of a classical set into a 1-tuple: {x} → {⟨x⟩}.
XSet WrapUnary(const XSet& a);

/// \brief Inverse of WrapUnary; members that are not 1-tuples are dropped.
XSet UnwrapUnary(const XSet& a);

}  // namespace cst
}  // namespace xst
