#include "src/cst/function.h"

#include <unordered_set>

#include "src/cst/relation.h"
#include "src/ops/tuple.h"
#include "src/ops/value.h"
#include "src/process/process.h"

namespace xst {
namespace cst {

bool IsFunctionRelation(const XSet& r) {
  if (!IsRelation(r)) return false;
  std::unordered_set<XSet, XSetHash> seen;
  for (const Membership& m : r.members()) {
    Result<XSet> first = TupleGet(m.element, 1);
    if (!first.ok()) return false;
    if (!seen.insert(*first).second) return false;
  }
  return true;
}

Result<CstFunction> CstFunction::Make(const XSet& relation) {
  if (!IsFunctionRelation(relation)) {
    return Status::TypeError("CstFunction: not a functional relation: " +
                             relation.ToString());
  }
  return CstFunction(relation);
}

Result<XSet> CstFunction::Apply(const XSet& a) const {
  for (const Membership& m : relation_.members()) {
    Result<XSet> first = TupleGet(m.element, 1);
    if (first.ok() && *first == a) return TupleGet(m.element, 2);
  }
  return Status::NotFound("CstFunction: " + a.ToString() + " not in domain");
}

Result<XSet> ApplyViaXst(const XSet& relation, const XSet& x) {
  Process behavior(relation, Sigma::Std());
  XSet image = behavior.Apply(XSet::Classical({XSet::Tuple({x})}));
  return Value(image);
}

}  // namespace cst
}  // namespace xst
