// Kuratowski pairs: the classical encoding XST replaces, implemented for
// comparison (paper §9 and Skolem's objection, reference [5]).
//
//   ⟨a,b⟩_K = {{a}, {a,b}}
//
// The encoding is faithful for pair *identity* but hostile to pairs as
// *operands*: components are recovered by case analysis (the degenerate
// ⟨a,a⟩_K collapses to {{a}}), n-tuples must nest (⟨a,b,c⟩ becomes
// ⟨a,⟨b,c⟩⟩ or ⟨⟨a,b⟩,c⟩ — two *different* sets), and no σ-machinery can
// address "the i-th component" uniformly. The tests in kuratowski_test.cc
// demonstrate each failure next to the scope-based tuple that avoids it —
// the concrete content of the paper's claim that XST tuples "replace these
// old challenges".

#pragma once

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {
namespace cst {

/// \brief ⟨a,b⟩_K = {{a},{a,b}} (collapses to {{a}} when a = b).
XSet KuratowskiPair(const XSet& a, const XSet& b);

/// \brief True iff s is a well-formed Kuratowski pair.
bool IsKuratowskiPair(const XSet& s);

/// \brief First component; TypeError when s is not a Kuratowski pair.
Result<XSet> KuratowskiFirst(const XSet& s);

/// \brief Second component (equal to the first for the degenerate case).
Result<XSet> KuratowskiSecond(const XSet& s);

/// \brief Converts a Kuratowski pair to the XST pair ⟨a,b⟩ = {a¹, b²}.
Result<XSet> KuratowskiToXstPair(const XSet& s);

/// \brief Converts an XST pair to its Kuratowski encoding.
Result<XSet> XstPairToKuratowski(const XSet& pair);

}  // namespace cst
}  // namespace xst
