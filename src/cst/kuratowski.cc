#include "src/cst/kuratowski.h"

#include "src/ops/tuple.h"

namespace xst {
namespace cst {

XSet KuratowskiPair(const XSet& a, const XSet& b) {
  XSet singleton = XSet::Classical({a});
  XSet doubleton = XSet::Classical({a, b});  // collapses when a == b
  return XSet::Classical({singleton, doubleton});
}

namespace {

// Extracts {singleton, doubleton} with |singleton| = 1. Returns false on any
// shape violation.
bool Decompose(const XSet& s, XSet* first, XSet* second) {
  if (!s.is_set()) return false;
  if (s.cardinality() == 1) {
    // Degenerate ⟨a,a⟩ = {{a}}.
    const Membership& m = s.members()[0];
    if (!m.scope.empty() || m.element.cardinality() != 1) return false;
    const Membership& inner = m.element.members()[0];
    if (!inner.scope.empty()) return false;
    *first = inner.element;
    *second = inner.element;
    return true;
  }
  if (s.cardinality() != 2) return false;
  // Canonical order sorts the 1-member set before the 2-member set.
  const Membership& small = s.members()[0];
  const Membership& large = s.members()[1];
  if (!small.scope.empty() || !large.scope.empty()) return false;
  if (small.element.cardinality() != 1 || large.element.cardinality() != 2) return false;
  const Membership& a_m = small.element.members()[0];
  if (!a_m.scope.empty()) return false;
  XSet a = a_m.element;
  // The doubleton must be {a, b} with b ≠ a.
  XSet b;
  bool saw_a = false, saw_b = false;
  for (const Membership& m : large.element.members()) {
    if (!m.scope.empty()) return false;
    if (m.element == a) {
      saw_a = true;
    } else {
      b = m.element;
      saw_b = true;
    }
  }
  if (!saw_a || !saw_b) return false;
  *first = a;
  *second = b;
  return true;
}

}  // namespace

bool IsKuratowskiPair(const XSet& s) {
  XSet first, second;
  return Decompose(s, &first, &second);
}

Result<XSet> KuratowskiFirst(const XSet& s) {
  XSet first, second;
  if (!Decompose(s, &first, &second)) {
    return Status::TypeError("not a Kuratowski pair: " + s.ToString());
  }
  return first;
}

Result<XSet> KuratowskiSecond(const XSet& s) {
  XSet first, second;
  if (!Decompose(s, &first, &second)) {
    return Status::TypeError("not a Kuratowski pair: " + s.ToString());
  }
  return second;
}

Result<XSet> KuratowskiToXstPair(const XSet& s) {
  XSet first, second;
  if (!Decompose(s, &first, &second)) {
    return Status::TypeError("not a Kuratowski pair: " + s.ToString());
  }
  return XSet::Pair(first, second);
}

Result<XSet> XstPairToKuratowski(const XSet& pair) {
  std::vector<XSet> parts;
  if (!TupleElements(pair, &parts) || parts.size() != 2) {
    return Status::TypeError("not an XST pair: " + pair.ToString());
  }
  return KuratowskiPair(parts[0], parts[1]);
}

}  // namespace cst
}  // namespace xst
