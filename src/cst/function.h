// CST functions and the element-level bridge (paper §3, Theorem 9.10).
//
// A CST function is a relation in which no first component repeats:
// f(a) = b ⟺ f[{a}] = {b} (Def 3.2). Theorem 9.10 states that every CST
// element-level function is recovered from the XST set-level behavior by
// value extraction:
//
//   f(x) = 𝒱( f₍σ₎({⟨x⟩}) )   with σ = ⟨⟨1⟩,⟨2⟩⟩.

#pragma once

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {
namespace cst {

/// \brief True iff r is a relation with pairwise distinct first components.
bool IsFunctionRelation(const XSet& r);

/// \brief A CST function: a validated functional relation with element-level
/// application.
class CstFunction {
 public:
  /// \brief Validates the relation; TypeError if some first component
  /// repeats or a member is not a classical pair.
  static Result<CstFunction> Make(const XSet& relation);

  /// \brief f(a) = b (Def 3.2). NotFound when a ∉ 𝔇₁(f).
  Result<XSet> Apply(const XSet& a) const;

  const XSet& relation() const { return relation_; }

 private:
  explicit CstFunction(XSet relation) : relation_(std::move(relation)) {}
  XSet relation_;
};

/// \brief Theorem 9.10: element application routed through the XST behavior
/// and value extraction. Equal to CstFunction::Apply on every functional
/// relation — tested property.
Result<XSet> ApplyViaXst(const XSet& relation, const XSet& x);

}  // namespace cst
}  // namespace xst
