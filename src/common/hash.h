// Hash combinators used by the interner and the storage codec.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xst {

/// \brief 64-bit FNV-1a over a byte range; the base primitive for all hashing.
inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 14695981039346656037ULL) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) { return HashBytes(s.data(), s.size()); }

/// \brief Mixes a new 64-bit value into an accumulated hash (boost-style).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  // 64-bit variant of boost::hash_combine with a splitmix64 finisher on v.
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  v = v ^ (v >> 31);
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

inline uint64_t HashInt(int64_t v) {
  return HashCombine(0x51ed27f1a1c3a3b7ULL, static_cast<uint64_t>(v));
}

}  // namespace xst
