// A fixed-size thread pool with a chunked parallel-map primitive.
//
// The pool backs the bulk set-operation kernels (relative product, image,
// cross product, canonicalization sort): whole-set operators are data
// parallel by construction — the paper's set-processing claim is that the
// system, not the user, gets to exploit that — so one process-wide pool is
// shared by every operator.
//
// Design points (deliberately boring, in the Arrow/RocksDB tradition):
//   * Fixed size, chosen once from std::thread::hardware_concurrency() (or
//     the XST_NUM_THREADS environment variable); no dynamic growth.
//   * ParallelFor is the only primitive operators use. It splits [0, n) into
//     chunks, runs them on the workers AND the calling thread (the caller is
//     always a worker, so a pool of size 1 degrades to a plain loop with no
//     queueing), and returns when every chunk is done.
//   * Nested parallelism is safe: a ParallelFor issued from inside a worker
//     runs inline on that worker. This bounds stack depth and can never
//     deadlock on pool capacity.
//   * Exceptions thrown by chunk bodies are captured; the first one is
//     rethrown on the calling thread after all chunks settle, so a parallel
//     loop fails exactly like its serial equivalent.
//
// All XSet values are immutable and the interner is thread-safe, so operator
// bodies may intern freely from any worker.

#pragma once

#include <cstddef>
#include <functional>

namespace xst {

class ThreadPool {
 public:
  /// \brief The process-wide pool. Sized from XST_NUM_THREADS if set,
  /// otherwise std::thread::hardware_concurrency().
  static ThreadPool& Global();

  /// \brief A pool with `threads` workers (0 and 1 both mean "run inline").
  /// Mainly for tests; operators use Global().
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Number of worker threads (0 when the pool runs everything inline).
  size_t size() const { return workers_count_; }

  /// \brief Applies `body(begin, end)` over disjoint chunks covering [0, n).
  ///
  /// Chunks are at least `min_chunk` items (the grain below which splitting
  /// costs more than it buys). The calling thread participates; the call
  /// returns only when all chunks are done. If any body throws, the first
  /// exception is rethrown here after the loop settles. Bodies run
  /// concurrently and must not mutate shared state without synchronization.
  void ParallelFor(size_t n, size_t min_chunk,
                   const std::function<void(size_t, size_t)>& body);

  /// \brief True in code dynamically reached from a pool worker (used to run
  /// nested parallel regions inline).
  static bool InWorker();

 private:
  struct Impl;
  Impl* impl_;
  size_t workers_count_;
};

/// \brief Convenience: chunked parallel loop on the global pool.
inline void ParallelFor(size_t n, size_t min_chunk,
                        const std::function<void(size_t, size_t)>& body) {
  ThreadPool::Global().ParallelFor(n, min_chunk, body);
}

}  // namespace xst
