#include "src/common/sync.h"

#include <cstdio>
#include <cstdlib>

namespace xst {

// Out of line so the abort site (and its message) exists once, not once per
// inlined call; the hot Lock/Unlock paths stay header-inline.
void Mutex::AssertHeld() const {
#ifndef NDEBUG
  if (owner_.load(std::memory_order_relaxed) != std::this_thread::get_id()) {
    std::fprintf(stderr,
                 "xst::Mutex::AssertHeld: calling thread does not hold the "
                 "mutex (a REQUIRES-annotated helper was reached without its "
                 "lock)\n");
    std::abort();
  }
#endif
}

}  // namespace xst
