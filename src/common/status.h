// Status: the error-propagation vocabulary for all of libxst.
//
// Follows the Arrow/RocksDB idiom: library functions that can fail return a
// Status (or Result<T>, see result.h); exceptions never cross the public API.

#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace xst {

/// \brief Machine-readable category of a failure.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalid = 1,        ///< caller supplied an argument that violates a precondition
  kTypeError = 2,      ///< an extended set had the wrong shape (e.g. atom where set needed)
  kNotFound = 3,       ///< a requested object (catalog entry, page, key) does not exist
  kAlreadyExists = 4,  ///< creation collided with an existing object
  kOutOfRange = 5,     ///< index/position outside the valid range
  kCapacityError = 6,  ///< a size limit (page, tuple width, power-set bound) was exceeded
  kIOError = 7,        ///< the storage layer failed to read or write
  kCorruption = 8,     ///< persistent data failed validation (checksum, framing)
  kNotImplemented = 9, ///< feature intentionally unavailable
  kParseError = 10,    ///< textual XST notation could not be parsed
  kResourceExhausted = 11,  ///< a bounded resource (buffer-pool frames) is fully pinned
  kUnknown = 12,
};

/// \brief Returns the canonical lower-case name of a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or a code plus a human-readable message.
///
/// Status is cheap to copy in the OK case (a null pointer); error states
/// allocate a small shared state. Test with ok(), branch with code(), and
/// propagate with XST_RETURN_NOT_OK (see macros.h).
///
/// [[nodiscard]]: a dropped Status is a swallowed failure, so discarding one
/// is a compile error (-Werror=unused-result). The rare deliberate drop —
/// best-effort cleanup on an already-failing path — must be an explicit
/// `(void)` cast with a comment saying why losing the error is sound.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(msg)})) {}

  /// \brief The singleton-like success value.
  static Status OK() { return Status(); }

  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityError(std::string msg) {
    return Status(StatusCode::kCapacityError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// \brief The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalid() const { return code() == StatusCode::kInvalid; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCapacityError() const { return code() == StatusCode::kCapacityError; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }

  /// \brief "OK" or "<code>: <message>".
  std::string ToString() const;

  /// \brief Returns a copy with extra context prepended to the message.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<const State> state_;  // null == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& st) {
  return os << st.ToString();
}

}  // namespace xst
