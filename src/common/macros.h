// Propagation macros for Status / Result, Arrow style.

#pragma once

#define XST_CONCAT_IMPL(x, y) x##y
#define XST_CONCAT(x, y) XST_CONCAT_IMPL(x, y)

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define XST_RETURN_NOT_OK(expr)             \
  do {                                      \
    ::xst::Status _st = (expr);             \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Evaluates `expr` (a Result<T> expression); on error returns the Status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define XST_ASSIGN_OR_RAISE_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).ValueOrDie()

#define XST_ASSIGN_OR_RAISE(lhs, expr) \
  XST_ASSIGN_OR_RAISE_IMPL(XST_CONCAT(_xst_result_, __COUNTER__), lhs, expr)

// XST_DCHECK moved to src/common/check.h (tiered check macros); the old
// assert()-based form evaluated nothing under NDEBUG and left unused-variable
// warnings behind.
