// Result<T>: a value or a Status, in the Arrow style.

#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace xst {

/// \brief Either a T or an error Status.
///
/// A Result constructed from a value is ok(); one constructed from a non-OK
/// Status carries the error. Accessing the value of an errored Result is a
/// programming bug and asserts in debug builds.
///
/// [[nodiscard]] for the same reason as Status: a dropped Result silently
/// swallows both the value and the failure. Deliberate drops take an
/// explicit `(void)` cast plus a comment.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (the common, successful path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit from an error Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : status_;
  }

  /// \brief The contained value. Precondition: ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief The value, or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace xst
