// Clang Thread Safety Analysis annotations.
//
// These macros attach capability semantics to lock types and lock-protected
// data so `-Wthread-safety` proves, at compile time, that every access to a
// guarded field happens under its lock and that lock acquisition order is
// respected at function boundaries. On non-Clang compilers (and on Clang
// without the analysis enabled) they expand to nothing, so annotated code is
// portable; the astcheck tool (tools/xst_astcheck.py) re-checks the core
// rules on such builds.
//
// Vocabulary (mirrors Abseil / LLVM's thread_annotations.h):
//   XST_CAPABILITY(name)    a type that is a lockable capability (xst::Mutex)
//   XST_SCOPED_CAPABILITY   an RAII type that acquires on construction and
//                           releases on destruction (xst::MutexLock)
//   XST_GUARDED_BY(mu)      a field that may only be touched while holding mu
//   XST_PT_GUARDED_BY(mu)   a pointer field whose *pointee* is guarded by mu
//   XST_REQUIRES(mu)        a function that must be called while holding mu
//   XST_ACQUIRE(mu)         a function that acquires mu and does not release
//   XST_RELEASE(mu)         a function that releases mu
//   XST_TRY_ACQUIRE(b, mu)  a function that acquires mu iff it returns b
//   XST_EXCLUDES(mu)        a function that must NOT be called while holding
//                           mu (deadlock prevention for self-locking APIs)
//   XST_ASSERT_CAPABILITY(mu)      runtime assertion that mu is held
//   XST_RETURN_CAPABILITY(mu)      a function returning a reference to mu
//   XST_NO_THREAD_SAFETY_ANALYSIS  opt a function out (e.g. init/teardown
//                                  that is single-threaded by construction)
//
// Locksmith annotations (tools/xst_lint.py / tools/xst_astcheck.py — Clang's
// TSA does not consume these; the lint engines do):
//   XST_LOCK_RANK(n)    declares a Mutex's position in the global lock
//                       hierarchy. Every acquisition path must be strictly
//                       rank-increasing (lock-rank rule); ranks at or above
//                       the latch floor (DESIGN.md §15) additionally forbid
//                       reaching any blocking point while held
//                       (blocking-under-latch rule).
//   XST_BLOCKING        declares a function a blocking point (file I/O,
//                       fsync waits, condition waits, pool fan-out) for the
//                       blocking-under-latch rule, extending the built-in
//                       registry (File I/O, Wal::WaitDurable, CondVar::Wait,
//                       ParallelFor).
//
// See DESIGN.md section 10 for the per-subsystem capability map and the
// rules for introducing new shared state, and section 15 for the lock-rank
// hierarchy.

#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define XST_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define XST_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on non-Clang
#endif

#define XST_CAPABILITY(x) XST_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define XST_SCOPED_CAPABILITY XST_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define XST_GUARDED_BY(x) XST_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define XST_PT_GUARDED_BY(x) XST_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define XST_ACQUIRED_BEFORE(...) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define XST_ACQUIRED_AFTER(...) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define XST_REQUIRES(...) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define XST_REQUIRES_SHARED(...) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define XST_ACQUIRE(...) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define XST_ACQUIRE_SHARED(...) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define XST_RELEASE(...) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define XST_RELEASE_SHARED(...) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define XST_TRY_ACQUIRE(...) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define XST_EXCLUDES(...) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define XST_ASSERT_CAPABILITY(x) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define XST_RETURN_CAPABILITY(x) \
  XST_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define XST_NO_THREAD_SAFETY_ANALYSIS \
  XST_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// Locksmith: lock-rank / blocking-point declarations. On Clang these lower
// to `annotate` attributes the AST engine reads back; the fallback engine
// regex-parses the macro spelling, so keep the literal names stable.
#if defined(__clang__) && (!defined(SWIG))
#define XST_LOCK_RANK(n) __attribute__((annotate("xst::lock_rank=" #n)))
#define XST_BLOCKING __attribute__((annotate("xst::blocking")))
#else
#define XST_LOCK_RANK(n)  // parsed by tools/xst_lint.py on non-Clang builds
#define XST_BLOCKING
#endif
