// Tiered correctness-check macros for libxst.
//
// Three tiers, by cost and by who pays it:
//
//   XST_CHECK(cond)     always on, every build. For invariants whose violation
//                       means memory is already lying to us (a corrupted node,
//                       an impossible state machine transition). Aborts with
//                       the failed expression and source location.
//
//   XST_DCHECK(cond)    debug builds only. For preconditions that are cheap to
//                       state but too hot to test in release (e.g. "this
//                       member list is canonically sorted" before the trusted
//                       FromSortedMembers fast path). Under NDEBUG the
//                       condition is *not evaluated* — it sits in an
//                       unevaluated sizeof so variables it names still count
//                       as used (no -Wunused-variable fallout) while side
//                       effects are impossible to rely on. xst_lint.py rejects
//                       side-effectful XST_DCHECK arguments for exactly that
//                       reason.
//
//   XST_VALIDATE(x)     post-condition validation of a kernel result, gated by
//                       the XST_VALIDATE_LEVEL compile definition (a CMake
//                       cache option):
//                         0  compiles to the bare expression (zero cost);
//                         1  shallow: the result node's member list is checked
//                            for strict canonical order and a coherent
//                            hash/depth/size header;
//                         2  deep: full recursive validation — every reachable
//                            node canonical, interned exactly once and
//                            pointer-equal to its canonical form, scope graph
//                            well-founded.
//                       XST_VALIDATE is an *expression* returning its operand,
//                       so kernels wrap their return values:
//                         return XST_VALIDATE(XSet::FromSortedMembers(...));
//                       In statement position, cast: (void)XST_VALIDATE(x);

#pragma once

namespace xst {

class XSet;

namespace internal {

/// \brief Prints the failed expression and location to stderr and aborts.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);

/// \brief Validates `s` at the compiled XST_VALIDATE_LEVEL; aborts with a
/// diagnostic on corruption, otherwise returns `s` unchanged.
XSet ValidateOrDie(XSet s, const char* file, int line, const char* expr);

}  // namespace internal
}  // namespace xst

#define XST_CHECK(cond) \
  ((cond) ? (void)0 : ::xst::internal::CheckFailed(#cond, __FILE__, __LINE__))

#ifndef NDEBUG
#define XST_DCHECK(cond) XST_CHECK(cond)
#else
// Unevaluated: no side effects, no branches, no unused-variable warnings.
#define XST_DCHECK(cond) ((void)sizeof((cond)))
#endif

#ifndef XST_VALIDATE_LEVEL
#define XST_VALIDATE_LEVEL 0
#endif

#if XST_VALIDATE_LEVEL >= 1
#define XST_VALIDATE(x) (::xst::internal::ValidateOrDie((x), __FILE__, __LINE__, #x))
#else
#define XST_VALIDATE(x) (x)
#endif

// XST_VM_VALIDATE(x): the Vm validation tier. Materialization boundaries —
// where the bytecode VM's scratch spans re-enter the interner through the
// trusted FromSortedMembers fast path — concentrate the trust the span
// kernels place in their canonical-output contract, so they validate even
// in debug builds compiled with XST_VALIDATE_LEVEL=0 (at the level
// ValidateOrDie was built with, shallow by default). Release builds at
// level 0 keep the bare expression: the differential fuzz oracle covers
// that configuration instead.
#if XST_VALIDATE_LEVEL >= 1
#define XST_VM_VALIDATE(x) XST_VALIDATE(x)
#elif !defined(NDEBUG)
#define XST_VM_VALIDATE(x) (::xst::internal::ValidateOrDie((x), __FILE__, __LINE__, #x))
#else
#define XST_VM_VALIDATE(x) (x)
#endif
