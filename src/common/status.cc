#include "src/common/status.h"

namespace xst {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalid:
      return "invalid";
    case StatusCode::kTypeError:
      return "type error";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kCapacityError:
      return "capacity error";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace xst
