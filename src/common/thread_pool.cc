#include "src/common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <thread>
#include <vector>

#include "src/common/sync.h"
#include "src/obs/metrics.h"

namespace xst {

namespace {

thread_local bool tls_in_worker = false;

// Pool telemetry: how often regions go parallel vs inline, and how the
// chunks split between workers and the participating caller.
obs::Counter& ParallelForCalls() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("pool.parallel_for.calls");
  return c;
}
obs::Counter& ParallelForInline() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("pool.parallel_for.inline");
  return c;
}
obs::Counter& TasksEnqueued() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("pool.tasks.enqueued");
  return c;
}
obs::Counter& WorkerChunks() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("pool.chunks.worker");
  return c;
}
obs::Counter& CallerChunks() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("pool.chunks.caller");
  return c;
}

size_t GlobalPoolSize() {
  if (const char* env = std::getenv("XST_NUM_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 0) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

struct ThreadPool::Impl {
  Mutex pool_mu XST_LOCK_RANK(70);
  CondVar work_available;
  std::deque<std::function<void()>> queue XST_GUARDED_BY(pool_mu);
  std::vector<std::thread> workers;  // written once at construction, then joined
  bool shutting_down XST_GUARDED_BY(pool_mu) = false;

  void WorkerLoop() {
    tls_in_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&pool_mu);
        // Explicit predicate loop (not the lambda overload) so the analysis
        // sees the guarded reads happen with `pool_mu` held.
        while (!shutting_down && queue.empty()) work_available.Wait(lock);
        if (queue.empty()) return;  // shutting down and drained
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }

  void Enqueue(std::function<void()> task) {
    {
      MutexLock lock(&pool_mu);
      queue.push_back(std::move(task));
    }
    work_available.NotifyOne();
  }
};

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(GlobalPoolSize());  // leaked, like the interner
  return *pool;
}

ThreadPool::ThreadPool(size_t threads) : impl_(new Impl()) {
  // One worker is pointless: the caller already participates in ParallelFor.
  workers_count_ = threads <= 1 ? 0 : threads;
  for (size_t i = 0; i < workers_count_; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&impl_->pool_mu);
    impl_->shutting_down = true;
  }
  impl_->work_available.NotifyAll();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

bool ThreadPool::InWorker() { return tls_in_worker; }

void ThreadPool::ParallelFor(size_t n, size_t min_chunk,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (min_chunk == 0) min_chunk = 1;
  const size_t max_chunks = (n + min_chunk - 1) / min_chunk;
  // Inline when there is nothing to split across, the range is a single
  // chunk, or we are already inside a worker (nested region).
  const size_t parallelism = workers_count_ + 1;  // workers + caller
  ParallelForCalls().Increment();
  if (parallelism <= 1 || max_chunks <= 1 || tls_in_worker) {
    ParallelForInline().Increment();
    body(0, n);
    return;
  }
  // 4 chunks per participant smooths over uneven chunk costs without
  // shrinking chunks below the grain.
  const size_t num_chunks = std::min(max_chunks, parallelism * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;

  struct Shared {
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> done_chunks{0};
    Mutex region_mu XST_LOCK_RANK(71);
    CondVar all_done;
    std::exception_ptr error XST_GUARDED_BY(region_mu);
  };
  auto shared = std::make_shared<Shared>();

  auto run_chunks = [shared, num_chunks, chunk, n, &body]() {
    for (;;) {
      size_t c = shared->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      size_t begin = c * chunk;
      size_t end = std::min(n, begin + chunk);
      try {
        if (begin < end) {
          (tls_in_worker ? WorkerChunks() : CallerChunks()).Increment();
          body(begin, end);
        }
      } catch (...) {
        MutexLock lock(&shared->region_mu);
        if (!shared->error) shared->error = std::current_exception();
      }
      if (shared->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
        MutexLock lock(&shared->region_mu);
        shared->all_done.NotifyAll();
      }
    }
  };

  // The body reference only lives for this call, so every task must finish
  // before we return — which the done_chunks wait below guarantees. Helpers
  // beyond the number of remaining chunks exit immediately.
  const size_t helpers = std::min(workers_count_, num_chunks - 1);
  TasksEnqueued().Add(helpers);
  for (size_t i = 0; i < helpers; ++i) impl_->Enqueue(run_chunks);
  run_chunks();  // caller participates
  {
    MutexLock lock(&shared->region_mu);
    while (shared->done_chunks.load(std::memory_order_acquire) != num_chunks) {
      shared->all_done.Wait(lock);
    }
    if (shared->error) std::rethrow_exception(shared->error);
  }
}

}  // namespace xst
