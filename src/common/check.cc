#include "src/common/check.h"

#include <cstdio>
#include <cstdlib>

namespace xst {
namespace internal {

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "XST_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::fflush(stderr);
  std::abort();
}

// ValidateOrDie lives in src/core/validate.cc next to the validator it calls.

}  // namespace internal
}  // namespace xst
