// Annotated synchronization primitives: the only lock types in libxst.
//
// xst::Mutex wraps std::mutex and carries the XST_CAPABILITY attribute, so
// Clang's thread-safety analysis can prove that every XST_GUARDED_BY field
// is touched only under its lock. xst::MutexLock is the scoped acquisition
// (RAII, like std::lock_guard but visible to the analysis); xst::CondVar
// pairs with MutexLock for wait/notify.
//
// House rules (enforced by -Werror=thread-safety on Clang CI and by
// tools/xst_astcheck.py's bare-mutex rule everywhere else):
//   * No bare std::mutex / std::shared_mutex / std::condition_variable
//     outside this file. All shared state goes behind xst::Mutex.
//   * Every field a Mutex protects is annotated XST_GUARDED_BY(mu) — even
//     fields of function-local structs (the analysis resolves member-
//     relative capabilities).
//   * Never hold a MutexLock across a ParallelFor: the pool inverts control
//     and a chunk that re-acquires the same lock self-deadlocks (astcheck's
//     lock-across-parallelfor rule).
//   * Every Mutex declaration carries XST_LOCK_RANK(n): the locksmith rules
//     (lock-rank, blocking-under-latch; DESIGN.md §15) prove acquisitions
//     are strictly rank-increasing and that nothing blocking runs while a
//     latch-class lock (rank ≥ the pager-latch floor) is held.
//
// In release builds the wrappers compile to the exact same code as the std
// types they wrap (everything is inline; the attribute is metadata only);
// run_benches.py confirms BM_Union and friends are unchanged vs
// BENCH_PR1.json. Debug builds additionally track the owning thread so
// AssertHeld() can back REQUIRES-annotated helpers at runtime.

#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/common/thread_annotations.h"

namespace xst {

/// \brief An annotated standard mutex: the capability every piece of shared
/// mutable state in libxst is guarded by.
class XST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// \brief Acquires the mutex (blocking). Prefer MutexLock.
  void Lock() XST_ACQUIRE() {
    mu_.lock();
    NoteLocked();
  }

  /// \brief Releases the mutex. Prefer MutexLock.
  void Unlock() XST_RELEASE() {
    NoteUnlocked();
    mu_.unlock();
  }

  /// \brief Acquires iff available; returns true on acquisition.
  bool TryLock() XST_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    NoteLocked();
    return true;
  }

  /// \brief Debug-checks that the calling thread holds this mutex (aborts
  /// otherwise); a no-op in NDEBUG builds. Statically, tells the analysis
  /// the capability is held from here on — the runtime teeth behind
  /// XST_REQUIRES on helpers reached through un-annotated code.
  void AssertHeld() const XST_ASSERT_CAPABILITY(this);

 private:
  friend class CondVar;
  friend class MutexLock;

#ifndef NDEBUG
  void NoteLocked() { owner_.store(std::this_thread::get_id(), std::memory_order_relaxed); }
  void NoteUnlocked() { owner_.store(std::thread::id(), std::memory_order_relaxed); }
  std::atomic<std::thread::id> owner_{};
#else
  void NoteLocked() {}
  void NoteUnlocked() {}
#endif

  std::mutex mu_;
};

/// \brief RAII scoped acquisition of a Mutex — the std::lock_guard of this
/// codebase, but visible to the thread-safety analysis (and usable with
/// CondVar::Wait, which std::lock_guard is not).
class XST_SCOPED_CAPABILITY MutexLock {
 public:
  /// \brief Acquires `*mu` for the lifetime of this object.
  explicit MutexLock(Mutex* mu) XST_ACQUIRE(mu) : mu_(mu), lock_(mu->mu_) {
    mu_->NoteLocked();
  }

  /// \brief Releases the mutex.
  ~MutexLock() XST_RELEASE() { mu_->NoteUnlocked(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* mu_;
  std::unique_lock<std::mutex> lock_;  // destroyed (→ unlocked) after ~MutexLock's body
};

/// \brief Condition variable paired with Mutex/MutexLock.
///
/// Wait releases the caller's MutexLock while blocked and reacquires before
/// returning, exactly like std::condition_variable. Predicates that read
/// guarded state belong in an explicit `while (!cond) Wait(...)` loop in the
/// caller, where the analysis can see the lock is held.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// \brief Blocks until notified. `lock` must hold the mutex guarding the
  /// awaited state; it is released while blocked and reacquired on wakeup.
  /// Spurious wakeups happen: always wait in a predicate loop.
  ///
  /// A registered blocking point (locksmith): waiting releases only `lock`'s
  /// own mutex, so the checker exempts the innermost held lock and flags a
  /// wait that would park while any OTHER latch-class lock stays held.
  void XST_BLOCKING Wait(MutexLock& lock) {
    lock.mu_->NoteUnlocked();
    cv_.wait(lock.lock_);
    lock.mu_->NoteLocked();
  }

  /// \brief Wakes one waiter.
  void NotifyOne() { cv_.notify_one(); }

  /// \brief Wakes every waiter.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace xst
