// Compilation of XSP plans to flat register bytecode.
//
// The tree interpreter (eval.cc) materializes an interned XSet at every
// node; the compiled form exists to NOT do that. Compile() lowers an
// (ideally already optimized) ExprPtr tree to a linear Program over virtual
// registers, which the VM (vm.h) executes over raw membership spans in a
// reusable scratch arena — a restrict∘image∘boolean chain becomes a fused
// run of span kernels with a single FromSortedMembers intern at the end.
//
// Opcode catalog (DESIGN.md §11):
//   kLoadLiteral   dst ← literals[a]                (interned)
//   kLoadBinding   dst ← cursor over names[a]       (interned or streamed)
//   kUnion         dst ← a ∪ b                      (span merge)
//   kIntersect     dst ← a ∩ b                      (span merge/gallop/hash)
//   kDifference    dst ← a ∼ b                      (span merge)
//   kRescope       dst ← 𝔇_σ(a)                     (σ-domain rescope loop)
//   kRestrict      dst ← a |_σ b                    (span filter)
//   kImage         dst ← a[b]_σ                     (fused filter+rescope)
//   kIndex         dst ← a[b]_σ via ImageIndex      (cached per VmContext)
//   kRelProduct    dst ← a /σω b                    (materialized operands)
//   kClosure       dst ← a⁺                         (materialized operand)
//   kMaterialize   dst ← intern(dst)                (FromSortedMembers)
//   kRange         dst ← {z^w ∈ a : lo ≤ z ≤ hi}    (contiguous span slice)
//   kLoadRange     dst ← range cursor over names[a] (ordered-index access
//                  path: CursorSource::OpenElementRange seeks the lower
//                  edge; a B+tree-backed source reads only in-range leaves)
//
// The VM's dispatch switch over this enum must be exhaustive; lint enforces
// it (vm-opcode-dispatch in tools/xst_lint.py / xst_astcheck.py).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/xsp/expr.h"

namespace xst {
namespace xsp {

enum class OpCode : uint8_t {
  kLoadLiteral,
  kLoadBinding,
  kUnion,
  kIntersect,
  kDifference,
  kRescope,
  kRestrict,
  kImage,
  kIndex,
  kRelProduct,
  kClosure,
  kMaterialize,
  kRange,
  kLoadRange,
};

/// \brief Number of OpCode enumerators (bounds per-opcode stats arrays).
inline constexpr size_t kNumOpCodes = 14;

/// \brief Static name of an opcode ("LoadBinding", "Image", ...).
const char* OpCodeName(OpCode op);

/// \brief One instruction. `a`/`b` are operand registers except for the
/// loads, where `a` indexes Program::literals / Program::names. `spec`
/// indexes Program::specs for the σ/ω-carrying opcodes and is 0 otherwise.
struct Instr {
  OpCode op = OpCode::kMaterialize;
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t spec = 0;
};

/// \brief σ (and for kRelProduct also ω) attached to an instruction. The
/// range opcodes reuse sigma as the interval: s1 = lo, s2 = hi.
struct SpecEntry {
  Sigma sigma{XSet::Empty(), XSet::Empty()};
  Sigma omega{XSet::Empty(), XSet::Empty()};
};

/// \brief A compiled plan: straight-line code in operand-before-use order,
/// ending with a kMaterialize of the result register (the only instruction
/// that interns on the fused span path).
struct Program {
  std::vector<Instr> code;
  std::vector<XSet> literals;
  std::vector<std::string> names;
  std::vector<SpecEntry> specs;
  uint16_t num_regs = 0;

  /// \brief Human-readable disassembly, one instruction per line.
  std::string ToString() const;
};

/// \brief Lowers `expr` to bytecode. Shared subtrees (pointer-identical
/// nodes, as the optimizer's rewrites produce) compile once and share a
/// register. Fails on null nodes or register/operand-table overflow.
Result<Program> Compile(const ExprPtr& expr);

}  // namespace xsp
}  // namespace xst
