#include "src/xsp/eval.h"

#include <cstdlib>
#include <string_view>

#include "src/common/macros.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ops/boolean.h"
#include "src/ops/closure.h"
#include "src/ops/domain.h"
#include "src/ops/image.h"
#include "src/ops/relative.h"
#include "src/ops/restrict.h"
#include "src/xsp/compile.h"
#include "src/xsp/vm.h"

namespace xst {
namespace xsp {

namespace {

Result<XSet> EvalImpl(const ExprPtr& expr, const Bindings& bindings, EvalStats* stats,
                      internal::NodeObserver* observer, bool is_root) {
  if (expr == nullptr) return Status::Invalid("null expression");
  if (stats != nullptr) ++stats->nodes_evaluated;
  if (observer != nullptr) observer->EnterNode(*expr);

  // Leaves are base data, not materialized intermediates: only computed
  // non-root results count toward the intermediate totals.
  bool is_leaf =
      expr->kind() == ExprKind::kLiteral || expr->kind() == ExprKind::kNamed;
  auto record = [&, is_leaf](XSet value) -> XSet {
    if (stats != nullptr && !is_root && !is_leaf) {
      stats->intermediate_cardinality += value.cardinality();
      stats->peak_cardinality = std::max<uint64_t>(stats->peak_cardinality,
                                                   value.cardinality());
    }
    if (observer != nullptr) observer->ExitNode(*expr, value);
    return value;
  };

  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return record(expr->literal());
    case ExprKind::kNamed: {
      auto it = bindings.find(expr->name());
      if (it == bindings.end()) {
        return Status::NotFound("unbound name '" + expr->name() + "'");
      }
      return record(it->second);
    }
    case ExprKind::kUnion: {
      XST_ASSIGN_OR_RAISE(XSet a, EvalImpl(expr->child(0), bindings, stats, observer, false));
      XST_ASSIGN_OR_RAISE(XSet b, EvalImpl(expr->child(1), bindings, stats, observer, false));
      return record(Union(a, b));
    }
    case ExprKind::kIntersect: {
      XST_ASSIGN_OR_RAISE(XSet a, EvalImpl(expr->child(0), bindings, stats, observer, false));
      XST_ASSIGN_OR_RAISE(XSet b, EvalImpl(expr->child(1), bindings, stats, observer, false));
      return record(Intersect(a, b));
    }
    case ExprKind::kDifference: {
      XST_ASSIGN_OR_RAISE(XSet a, EvalImpl(expr->child(0), bindings, stats, observer, false));
      XST_ASSIGN_OR_RAISE(XSet b, EvalImpl(expr->child(1), bindings, stats, observer, false));
      return record(Difference(a, b));
    }
    case ExprKind::kDomain: {
      XST_ASSIGN_OR_RAISE(XSet r, EvalImpl(expr->child(0), bindings, stats, observer, false));
      return record(SigmaDomain(r, expr->sigma().s1));
    }
    case ExprKind::kRestrict: {
      XST_ASSIGN_OR_RAISE(XSet r, EvalImpl(expr->child(0), bindings, stats, observer, false));
      XST_ASSIGN_OR_RAISE(XSet a, EvalImpl(expr->child(1), bindings, stats, observer, false));
      return record(SigmaRestrict(r, expr->sigma().s1, a));
    }
    case ExprKind::kImage: {
      XST_ASSIGN_OR_RAISE(XSet r, EvalImpl(expr->child(0), bindings, stats, observer, false));
      XST_ASSIGN_OR_RAISE(XSet a, EvalImpl(expr->child(1), bindings, stats, observer, false));
      return record(Image(r, a, expr->sigma()));
    }
    case ExprKind::kRelProduct: {
      XST_ASSIGN_OR_RAISE(XSet f, EvalImpl(expr->child(0), bindings, stats, observer, false));
      XST_ASSIGN_OR_RAISE(XSet g, EvalImpl(expr->child(1), bindings, stats, observer, false));
      return record(RelativeProduct(f, g, expr->sigma(), expr->omega()));
    }
    case ExprKind::kClosure: {
      XST_ASSIGN_OR_RAISE(XSet r, EvalImpl(expr->child(0), bindings, stats, observer, false));
      Result<XSet> closure = TransitiveClosure(r);
      if (!closure.ok()) return closure.status();
      return record(*closure);
    }
    case ExprKind::kRange: {
      XST_ASSIGN_OR_RAISE(XSet r, EvalImpl(expr->child(0), bindings, stats, observer, false));
      return record(ElementRangeRestrict(r, expr->sigma().s1, expr->sigma().s2));
    }
  }
  return Status::Invalid("unknown expression kind");
}

void ExplainImpl(const ExprPtr& expr, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (expr == nullptr) {
    out->append("(null)\n");
    return;
  }
  switch (expr->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kNamed:
      out->append(expr->ToString());
      out->push_back('\n');
      return;
    default:
      break;
  }
  // Operator head without the inlined children.
  std::string head = expr->ToString();
  out->append(head.substr(0, head.find('(')));
  out->push_back('\n');
  for (const ExprPtr& child : expr->children()) {
    ExplainImpl(child, depth + 1, out);
  }
}

}  // namespace

// Registry mirrors of EvalStats, so query totals show up in the process
// metrics dump alongside the cache and pool counters.
void MirrorEvalStats(const EvalStats& stats) {
  static obs::Counter& queries = obs::MetricsRegistry::Global().GetCounter("xsp.eval.queries");
  static obs::Counter& nodes = obs::MetricsRegistry::Global().GetCounter("xsp.eval.nodes");
  static obs::Counter& intermediates =
      obs::MetricsRegistry::Global().GetCounter("xsp.eval.intermediate_cardinality");
  queries.Increment();
  nodes.Add(stats.nodes_evaluated);
  intermediates.Add(stats.intermediate_cardinality);
}

Result<XSet> Eval(const ExprPtr& expr, const Bindings& bindings, EvalStats* stats) {
  XST_TRACE_SPAN("xsp.eval");
  EvalStats local;
  Result<XSet> result = EvalImpl(expr, bindings, &local, /*observer=*/nullptr,
                                 /*is_root=*/true);
  MirrorEvalStats(local);
  if (stats != nullptr) {
    stats->nodes_evaluated += local.nodes_evaluated;
    stats->intermediate_cardinality += local.intermediate_cardinality;
    stats->peak_cardinality = std::max(stats->peak_cardinality, local.peak_cardinality);
  }
  return result;
}

std::string Explain(const ExprPtr& expr) {
  std::string out;
  ExplainImpl(expr, 0, &out);
  return out;
}

const char* EngineName(Engine engine) {
  return engine == Engine::kVm ? "vm" : "interp";
}

Engine EngineFromEnv() {
  const char* env = std::getenv("XST_ENGINE");
  if (env != nullptr && std::string_view(env) == "vm") return Engine::kVm;
  return Engine::kInterp;
}

Result<XSet> EvalWithEngine(Engine engine, const ExprPtr& expr, const Bindings& bindings,
                            EvalStats* stats) {
  if (engine == Engine::kInterp) return Eval(expr, bindings, stats);
  XST_TRACE_SPAN("xsp.eval_vm");
  XST_ASSIGN_OR_RAISE(Program program, Compile(expr));
  // Per-thread arena: scripts and repeated queries on one thread re-execute
  // with warm buffers (the VmContext reuse contract).
  thread_local VmContext ctx;
  VmStats vm_stats;
  Result<XSet> result = VmEval(program, bindings, &ctx, &vm_stats);
  if (stats != nullptr) {
    stats->nodes_evaluated += vm_stats.instructions;
    stats->intermediate_cardinality += vm_stats.interned_intermediate_rows;
    stats->peak_cardinality = std::max(stats->peak_cardinality, vm_stats.peak_rows);
  }
  return result;
}

namespace internal {

Result<XSet> EvalObserved(const ExprPtr& expr, const Bindings& bindings, EvalStats* stats,
                          NodeObserver* observer) {
  EvalStats local;
  Result<XSet> result = EvalImpl(expr, bindings, &local, observer, /*is_root=*/true);
  MirrorEvalStats(local);
  if (stats != nullptr) {
    stats->nodes_evaluated += local.nodes_evaluated;
    stats->intermediate_cardinality += local.intermediate_cardinality;
    stats->peak_cardinality = std::max(stats->peak_cardinality, local.peak_cardinality);
  }
  return result;
}

}  // namespace internal

}  // namespace xsp
}  // namespace xst
