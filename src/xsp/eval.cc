#include "src/xsp/eval.h"

#include "src/common/macros.h"
#include "src/ops/boolean.h"
#include "src/ops/closure.h"
#include "src/ops/domain.h"
#include "src/ops/image.h"
#include "src/ops/relative.h"
#include "src/ops/restrict.h"

namespace xst {
namespace xsp {

namespace {

Result<XSet> EvalImpl(const ExprPtr& expr, const Bindings& bindings, EvalStats* stats,
                      bool is_root) {
  if (expr == nullptr) return Status::Invalid("null expression");
  if (stats != nullptr) ++stats->nodes_evaluated;

  // Leaves are base data, not materialized intermediates: only computed
  // non-root results count toward the intermediate totals.
  bool is_leaf =
      expr->kind() == ExprKind::kLiteral || expr->kind() == ExprKind::kNamed;
  auto record = [&, is_leaf](XSet value) -> XSet {
    if (stats != nullptr && !is_root && !is_leaf) {
      stats->intermediate_cardinality += value.cardinality();
      stats->peak_cardinality = std::max<uint64_t>(stats->peak_cardinality,
                                                   value.cardinality());
    }
    return value;
  };

  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return record(expr->literal());
    case ExprKind::kNamed: {
      auto it = bindings.find(expr->name());
      if (it == bindings.end()) {
        return Status::NotFound("unbound name '" + expr->name() + "'");
      }
      return record(it->second);
    }
    case ExprKind::kUnion: {
      XST_ASSIGN_OR_RAISE(XSet a, EvalImpl(expr->child(0), bindings, stats, false));
      XST_ASSIGN_OR_RAISE(XSet b, EvalImpl(expr->child(1), bindings, stats, false));
      return record(Union(a, b));
    }
    case ExprKind::kIntersect: {
      XST_ASSIGN_OR_RAISE(XSet a, EvalImpl(expr->child(0), bindings, stats, false));
      XST_ASSIGN_OR_RAISE(XSet b, EvalImpl(expr->child(1), bindings, stats, false));
      return record(Intersect(a, b));
    }
    case ExprKind::kDifference: {
      XST_ASSIGN_OR_RAISE(XSet a, EvalImpl(expr->child(0), bindings, stats, false));
      XST_ASSIGN_OR_RAISE(XSet b, EvalImpl(expr->child(1), bindings, stats, false));
      return record(Difference(a, b));
    }
    case ExprKind::kDomain: {
      XST_ASSIGN_OR_RAISE(XSet r, EvalImpl(expr->child(0), bindings, stats, false));
      return record(SigmaDomain(r, expr->sigma().s1));
    }
    case ExprKind::kRestrict: {
      XST_ASSIGN_OR_RAISE(XSet r, EvalImpl(expr->child(0), bindings, stats, false));
      XST_ASSIGN_OR_RAISE(XSet a, EvalImpl(expr->child(1), bindings, stats, false));
      return record(SigmaRestrict(r, expr->sigma().s1, a));
    }
    case ExprKind::kImage: {
      XST_ASSIGN_OR_RAISE(XSet r, EvalImpl(expr->child(0), bindings, stats, false));
      XST_ASSIGN_OR_RAISE(XSet a, EvalImpl(expr->child(1), bindings, stats, false));
      return record(Image(r, a, expr->sigma()));
    }
    case ExprKind::kRelProduct: {
      XST_ASSIGN_OR_RAISE(XSet f, EvalImpl(expr->child(0), bindings, stats, false));
      XST_ASSIGN_OR_RAISE(XSet g, EvalImpl(expr->child(1), bindings, stats, false));
      return record(RelativeProduct(f, g, expr->sigma(), expr->omega()));
    }
    case ExprKind::kClosure: {
      XST_ASSIGN_OR_RAISE(XSet r, EvalImpl(expr->child(0), bindings, stats, false));
      Result<XSet> closure = TransitiveClosure(r);
      if (!closure.ok()) return closure.status();
      return record(*closure);
    }
  }
  return Status::Invalid("unknown expression kind");
}

void ExplainImpl(const ExprPtr& expr, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (expr == nullptr) {
    out->append("(null)\n");
    return;
  }
  switch (expr->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kNamed:
      out->append(expr->ToString());
      out->push_back('\n');
      return;
    default:
      break;
  }
  // Operator head without the inlined children.
  std::string head = expr->ToString();
  out->append(head.substr(0, head.find('(')));
  out->push_back('\n');
  for (const ExprPtr& child : expr->children()) {
    ExplainImpl(child, depth + 1, out);
  }
}

}  // namespace

Result<XSet> Eval(const ExprPtr& expr, const Bindings& bindings, EvalStats* stats) {
  return EvalImpl(expr, bindings, stats, /*is_root=*/true);
}

std::string Explain(const ExprPtr& expr) {
  std::string out;
  ExplainImpl(expr, 0, &out);
  return out;
}

}  // namespace xsp
}  // namespace xst
