// Static verification of compiled XSP programs (compile.h), run BEFORE the
// VM trusts a Program's bytes.
//
// The VM (vm.h) executes straight-line register code with raw table and
// register indexing on its hot path; a compiler bug that emits an undefined
// register, confuses a span with an interned handle, or points a load at a
// missing literal would become silent memory corruption at execution time.
// Verify() is an abstract interpreter over the 12-opcode Program that
// proves, once per program instead of once per dispatch:
//
//   (a) def-before-use and single assignment: every register operand was
//       defined by an earlier instruction, and every register is defined by
//       exactly one value-producing instruction (kMaterialize transitions a
//       register in place and is the one re-write allowed);
//   (b) a register type discipline over the lattice
//
//             span            least knowledge: possibly a raw arena span
//              |
//            handle           statically interned (hash-consed, stable)
//              |
//         materialized        interned via an explicit kMaterialize
//              |
//            uninit           bottom: never written
//
//       with per-opcode transfer functions: the fused span kernels
//       (kUnion..kImage) consume any defined register and produce spans;
//       kIndex / kRelProduct / kClosure delegate to set-level kernels and
//       require statically interned operands (handle or materialized) — a
//       stable carrier for the VmContext ImageIndex cache in kIndex's case;
//       kMaterialize is the only span -> handle transition;
//   (c) every literal / binding-name / spec table index in range, and the
//       root register defined exactly once;
//   (d) structural limits: opcode bytes inside the enum, register count and
//       program length bounded, every allocated register defined, and no
//       instruction after the root materialization (the final instruction
//       is the kMaterialize the VM reads the result register from).
//
// Every diagnostic names the offending instruction index ("instr 3
// (Union): ..."), so a rejected program is debuggable from the status text
// alone.
//
// Wiring: VmEval runs VerifyProgram as a mandatory pass at the
// XST_VM_VALIDATE tier (debug builds and XST_VALIDATE_LEVEL >= 1); Release
// builds opt in with the XST_VERIFY_PROGRAMS environment variable. EXPLAIN
// ANALYZE engine=vm and `xstctl verify` print VerifiedProgram::ToString(),
// the typed listing of the proof the verifier computed.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/xsp/compile.h"

namespace xst {
namespace xsp {

/// \brief Abstract type of a register, ordered by how much the verifier
/// knows about its runtime representation (see the lattice above).
enum class RegType : uint8_t {
  kUninit,        ///< never written
  kSpan,          ///< possibly a raw canonical span in the VmContext arena
  kHandle,        ///< statically interned handle
  kMaterialized,  ///< interned via an explicit kMaterialize
};

/// \brief Number of RegType enumerators.
inline constexpr size_t kNumRegTypes = 4;

/// \brief Static name of a register type ("uninit", "span", ...).
const char* RegTypeName(RegType type);

/// \brief True when `type` is statically known interned (what kIndex /
/// kRelProduct / kClosure operands must be).
inline bool IsInterned(RegType type) {
  return type == RegType::kHandle || type == RegType::kMaterialized;
}

/// \brief The verifier's per-instruction judgment: operand types observed
/// before the instruction and the destination type after it. Operand slots
/// that are not registers for the opcode (table indexes, unused fields)
/// stay kUninit.
struct InstrTypes {
  RegType a_before = RegType::kUninit;
  RegType b_before = RegType::kUninit;
  RegType dst_after = RegType::kUninit;
};

/// \brief Hard ceiling on code.size(); a Program longer than this is
/// rejected outright (structural limit (d)).
inline constexpr size_t kMaxProgramLength = size_t{1} << 20;

/// \brief A Program together with the proof Verify() computed for it. The
/// program inside is the one that was verified — callers hand the checked
/// bytes to the VM instead of re-fetching them from anywhere mutable.
class VerifiedProgram {
 public:
  /// \brief The verified program (byte-identical to what Verify was given).
  const Program& program() const { return program_; }

  /// \brief Per-instruction type judgments, parallel to program().code.
  const std::vector<InstrTypes>& instr_types() const { return instr_types_; }

  /// \brief The register the final kMaterialize pins the result in.
  uint16_t root_reg() const { return root_reg_; }

  /// \brief Typed disassembly: each instruction line annotated with the
  /// operand types consumed and the destination type produced, e.g.
  ///   2: Union r2 <- r0, r1   ; r0:handle, r1:span -> r2:span
  std::string ToString() const;

 private:
  friend Result<VerifiedProgram> Verify(Program program);

  Program program_;
  std::vector<InstrTypes> instr_types_;
  uint16_t root_reg_ = 0;
};

/// \brief Verifies `program` and, on success, returns it packaged with the
/// computed type proof. Rejections are Status::Invalid naming the offending
/// instruction index.
Result<VerifiedProgram> Verify(Program program);

/// \brief The same judgment as Verify() without materializing the proof —
/// no copy, no per-instruction type table kept. This is the form VmEval
/// calls on its hot path.
Status VerifyProgram(const Program& program);

/// \brief True when VmEval verifies programs before executing them: always
/// at the XST_VM_VALIDATE tier (debug builds or XST_VALIDATE_LEVEL >= 1),
/// and in Release when the XST_VERIFY_PROGRAMS environment variable is set
/// to anything but "0".
bool VmVerifyEnabled();

}  // namespace xsp
}  // namespace xst
