#include "src/xsp/vm.h"

#include <algorithm>
#include <array>
#include <utility>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/macros.h"
#include "src/core/order.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ops/closure.h"
#include "src/ops/relative.h"
#include "src/ops/span_kernels.h"
#include "src/xsp/verify.h"

namespace xst {
namespace xsp {

namespace {

// One virtual register: an interned handle, or a raw canonical span living
// in the VmContext buffer the register is pinned to.
struct Reg {
  XSet set;
  std::vector<Membership>* buf = nullptr;
  bool interned = false;

  MemberSpan Span() const { return interned ? set.members() : MemberSpan(*buf); }
  uint64_t Rows() const { return interned ? set.cardinality() : buf->size(); }
};

void MirrorVmStats(const VmStats& stats) {
  static obs::Counter& programs =
      obs::MetricsRegistry::Global().GetCounter("xsp.vm.programs");
  static obs::Counter& instructions =
      obs::MetricsRegistry::Global().GetCounter("xsp.vm.instructions");
  static obs::Counter& materializations =
      obs::MetricsRegistry::Global().GetCounter("xsp.vm.materializations");
  programs.Increment();
  instructions.Add(stats.instructions);
  materializations.Add(stats.materializations);
}

// Per-opcode execution counters, named so a metrics dump reads as an
// opcode histogram ("xsp.vm.op.image": 12, ...). The table is built once
// under the magic-static guard, so concurrent VMs only ever read it.
void CountOpcode(OpCode op) {
  static const std::array<obs::Counter*, kNumOpCodes> counters = [] {
    std::array<obs::Counter*, kNumOpCodes> table{};
    for (size_t i = 0; i < kNumOpCodes; ++i) {
      table[i] = &obs::MetricsRegistry::Global().GetCounter(
          std::string("xsp.vm.op.") + OpCodeName(static_cast<OpCode>(i)));
    }
    return table;
  }();
  const size_t i = static_cast<size_t>(op);
  XST_DCHECK(i < kNumOpCodes);  // proven by VerifyProgram before dispatch
  counters[i]->Add(1);
}

}  // namespace

VmContext::~VmContext() = default;

size_t VmContext::arena_capacity() const {
  size_t total = 0;
  for (const std::vector<Membership>& buf : buffers_) total += buf.capacity();
  return total;
}

size_t VmContext::IndexKeyHash::operator()(const IndexKey& k) const {
  return static_cast<size_t>(
      HashCombine(HashCombine(reinterpret_cast<uintptr_t>(k.r),
                              reinterpret_cast<uintptr_t>(k.s1)),
                  reinterpret_cast<uintptr_t>(k.s2)));
}

namespace internal {

class VmExecutor {
 public:
  static Result<XSet> Run(const Program& program, const CursorSource& source,
                          VmContext* ctx, VmStats* stats, VmObserver* observer) {
    XST_TRACE_SPAN("xsp.vm.exec");
    if (program.code.empty()) return Status::Invalid("empty program");
    // Mandatory static pass at the XST_VM_VALIDATE tier (opt-in in Release
    // via XST_VERIFY_PROGRAMS): everything the XST_DCHECKs below assume —
    // register/table indexes in range, operands defined, kIndex /
    // kRelProduct / kClosure operands interned — is proven here, once per
    // program instead of once per dispatch.
    if (VmVerifyEnabled()) {
      XST_RETURN_NOT_OK(VerifyProgram(program));
    }

    // Pin each register to its arena buffer: cleared, capacity retained, so
    // a re-executed program allocates nothing once warm.
    if (ctx->buffers_.size() < program.num_regs) {
      ctx->buffers_.resize(program.num_regs);
    }
    for (std::vector<Membership>& buf : ctx->buffers_) buf.clear();
    std::vector<Reg> regs(program.num_regs);
    for (size_t i = 0; i < regs.size(); ++i) regs[i].buf = &ctx->buffers_[i];

    VmStats local;
    const uint16_t result_reg = program.code.back().dst;

    for (size_t pc = 0; pc < program.code.size(); ++pc) {
      const Instr& in = program.code[pc];
      XST_DCHECK(in.dst < regs.size());
      ++local.instructions;
      CountOpcode(in.op);
      if (observer != nullptr) observer->OnInstrStart(pc);
      const uint64_t t0 = observer != nullptr ? obs::MonotonicNowNs() : 0;
      const uint64_t intermediates0 = local.interned_intermediate_rows;

      // Every enumerator must be handled here — no default — so a new
      // opcode fails to compile (and lint's vm-opcode-dispatch rule fails)
      // until the VM learns it.
      switch (in.op) {
        case OpCode::kLoadLiteral: {
          XST_TRACE_SPAN("vm.load_literal");
          regs[in.dst].set = program.literals[in.a];
          regs[in.dst].interned = true;
          break;
        }
        case OpCode::kLoadBinding: {
          XST_TRACE_SPAN("vm.load_binding");
          XST_ASSIGN_OR_RAISE(std::unique_ptr<MemberCursor> cursor,
                              source.Open(program.names[in.a]));
          if (std::optional<XSet> whole = cursor->WholeSet()) {
            regs[in.dst].set = std::move(*whole);
            regs[in.dst].interned = true;
          } else {
            // Batches are consecutive slices of one canonical list, so
            // concatenation needs no re-sort.
            std::vector<Membership>* buf = regs[in.dst].buf;
            for (MemberSpan batch = cursor->NextBatch(); !batch.empty();
                 batch = cursor->NextBatch()) {
              buf->insert(buf->end(), batch.begin(), batch.end());
            }
            // Page-backed cursors signal failure and exhaustion identically
            // (an empty batch); a truncated operand must not evaluate.
            XST_RETURN_NOT_OK(cursor->status());
            regs[in.dst].interned = false;
          }
          break;
        }
        case OpCode::kUnion: {
          XST_TRACE_SPAN("vm.union");
          UnionSpans(regs[in.a].Span(), regs[in.b].Span(), regs[in.dst].buf);
          break;
        }
        case OpCode::kIntersect: {
          XST_TRACE_SPAN("vm.intersect");
          IntersectSpans(regs[in.a].Span(), regs[in.b].Span(), regs[in.dst].buf);
          break;
        }
        case OpCode::kDifference: {
          XST_TRACE_SPAN("vm.difference");
          DifferenceSpans(regs[in.a].Span(), regs[in.b].Span(), regs[in.dst].buf);
          break;
        }
        case OpCode::kRescope: {
          XST_TRACE_SPAN("vm.rescope");
          DomainSpans(regs[in.a].Span(), program.specs[in.spec].sigma.s1,
                      regs[in.dst].buf);
          break;
        }
        case OpCode::kRestrict: {
          XST_TRACE_SPAN("vm.restrict");
          RestrictSpans(regs[in.a].Span(), program.specs[in.spec].sigma.s1,
                        regs[in.b].Span(), regs[in.dst].buf);
          break;
        }
        case OpCode::kImage: {
          XST_TRACE_SPAN("vm.image");
          ImageSpans(regs[in.a].Span(), program.specs[in.spec].sigma,
                     regs[in.b].Span(), regs[in.dst].buf);
          break;
        }
        case OpCode::kIndex: {
          XST_TRACE_SPAN("vm.index");
          XST_DCHECK(regs[in.a].interned && regs[in.b].interned);
          const Sigma& sigma = program.specs[in.spec].sigma;
          ImageIndex& index = GetIndex(ctx, regs[in.a].set, sigma);
          regs[in.dst].set = index.Lookup(regs[in.b].set);
          regs[in.dst].interned = true;
          if (in.dst != result_reg) {
            local.interned_intermediate_rows += regs[in.dst].set.cardinality();
          }
          break;
        }
        case OpCode::kRelProduct: {
          XST_TRACE_SPAN("vm.rel_product");
          XST_DCHECK(regs[in.a].interned && regs[in.b].interned);
          const SpecEntry& spec = program.specs[in.spec];
          regs[in.dst].set =
              RelativeProduct(regs[in.a].set, regs[in.b].set, spec.sigma, spec.omega);
          regs[in.dst].interned = true;
          if (in.dst != result_reg) {
            local.interned_intermediate_rows += regs[in.dst].set.cardinality();
          }
          break;
        }
        case OpCode::kClosure: {
          XST_TRACE_SPAN("vm.closure");
          XST_DCHECK(regs[in.a].interned);
          XST_ASSIGN_OR_RAISE(regs[in.dst].set, TransitiveClosure(regs[in.a].set));
          regs[in.dst].interned = true;
          if (in.dst != result_reg) {
            local.interned_intermediate_rows += regs[in.dst].set.cardinality();
          }
          break;
        }
        case OpCode::kRange: {
          XST_TRACE_SPAN("vm.range");
          const Sigma& bounds = program.specs[in.spec].sigma;
          ElementRangeSpans(regs[in.a].Span(), bounds.s1, bounds.s2,
                            regs[in.dst].buf);
          break;
        }
        case OpCode::kLoadRange: {
          XST_TRACE_SPAN("vm.load_range");
          const Sigma& bounds = program.specs[in.spec].sigma;
          XST_ASSIGN_OR_RAISE(
              std::unique_ptr<MemberCursor> cursor,
              source.OpenElementRange(program.names[in.a], bounds.s1, bounds.s2));
          if (std::optional<XSet> whole = cursor->WholeSet()) {
            regs[in.dst].set = std::move(*whole);
            regs[in.dst].interned = true;
          } else {
            std::vector<Membership>* buf = regs[in.dst].buf;
            for (MemberSpan batch = cursor->NextBatch(); !batch.empty();
                 batch = cursor->NextBatch()) {
              buf->insert(buf->end(), batch.begin(), batch.end());
            }
            XST_RETURN_NOT_OK(cursor->status());
            regs[in.dst].interned = false;
          }
          break;
        }
        case OpCode::kMaterialize: {
          XST_TRACE_SPAN("vm.materialize");
          Reg& r = regs[in.dst];
          if (!r.interned) {
            // Copy out of the arena: FromSortedMembers takes ownership of
            // its vector, and donating the buffer would defeat reuse.
            std::vector<Membership> members(r.buf->begin(), r.buf->end());
            XST_DCHECK(IsCanonicalMemberList(members));
            r.set = XST_VM_VALIDATE(XSet::FromSortedMembers(std::move(members)));
            r.interned = true;
            ++local.materializations;
            if (in.dst != result_reg) {
              local.interned_intermediate_rows += r.set.cardinality();
            }
          }
          break;
        }
      }

      local.peak_rows = std::max(local.peak_rows, regs[in.dst].Rows());
      if (observer != nullptr) {
        observer->OnInstr(pc, in, regs[in.dst].Rows(), regs[in.dst].interned,
                          local.interned_intermediate_rows > intermediates0,
                          obs::MonotonicNowNs() - t0);
      }
    }

    MirrorVmStats(local);
    if (stats != nullptr) {
      stats->instructions += local.instructions;
      stats->materializations += local.materializations;
      stats->interned_intermediate_rows += local.interned_intermediate_rows;
      stats->peak_rows = std::max(stats->peak_rows, local.peak_rows);
    }
    XST_DCHECK(regs[result_reg].interned);  // verifier: final kMaterialize
    return regs[result_reg].set;
  }

 private:
  static ImageIndex& GetIndex(VmContext* ctx, const XSet& r, const Sigma& sigma) {
    VmContext::IndexKey key{r.node(), sigma.s1.node(), sigma.s2.node()};
    std::unique_ptr<ImageIndex>& slot = ctx->index_cache_[key];
    if (slot == nullptr) slot = std::make_unique<ImageIndex>(r, sigma);
    return *slot;
  }
};

}  // namespace internal

Result<XSet> VmEval(const Program& program, const CursorSource& source,
                    VmContext* ctx, VmStats* stats, VmObserver* observer) {
  VmContext scratch;
  return internal::VmExecutor::Run(program, source, ctx != nullptr ? ctx : &scratch,
                                   stats, observer);
}

Result<XSet> VmEval(const Program& program, const Bindings& bindings,
                    VmContext* ctx, VmStats* stats, VmObserver* observer) {
  MapCursorSource source(bindings);
  return VmEval(program, source, ctx, stats, observer);
}

}  // namespace xsp
}  // namespace xst
