#include "src/xsp/script.h"

#include <cctype>

#include "src/common/macros.h"
#include "src/xsp/eval.h"
#include "src/xsp/optimizer.h"
#include "src/xsp/parser.h"

namespace xst {
namespace xsp {

namespace {

std::string Trim(std::string_view s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string_view::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return std::string(s.substr(b, e - b + 1));
}

bool IsIdent(const std::string& s) {
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (c != '_' && !std::isalnum(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

Result<Script> ParseScript(std::string_view text) {
  Script script;
  size_t pos = 0;
  int line_number = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view raw =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;

    Statement statement;
    statement.source = line;
    std::string plan_text = line;
    // `name = plan` when the '=' precedes any plan syntax.
    size_t eq = line.find('=');
    size_t syntax = line.find_first_of("([{<@\"");
    if (eq != std::string::npos && (syntax == std::string::npos || eq < syntax)) {
      statement.bind_name = Trim(line.substr(0, eq));
      if (!IsIdent(statement.bind_name)) {
        return Status::ParseError("script line " + std::to_string(line_number) +
                                  ": invalid binding name '" + statement.bind_name + "'");
      }
      plan_text = Trim(line.substr(eq + 1));
    }
    Result<ExprPtr> plan = ParsePlan(plan_text);
    if (!plan.ok()) {
      return plan.status().WithContext("script line " + std::to_string(line_number));
    }
    statement.plan = *plan;
    script.statements.push_back(std::move(statement));
  }
  return script;
}

Result<ScriptOutput> RunScript(const Script& script, Bindings initial, bool optimize,
                               Engine engine) {
  ScriptOutput output;
  output.bindings = std::move(initial);
  for (const Statement& statement : script.statements) {
    ExprPtr plan = statement.plan;
    if (optimize) {
      XST_ASSIGN_OR_RAISE(plan, Optimize(plan, output.bindings));
    }
    Result<XSet> value = EvalWithEngine(engine, plan, output.bindings);
    if (!value.ok()) {
      return value.status().WithContext("statement '" + statement.source + "'");
    }
    if (statement.bind_name.empty()) {
      output.results.push_back(*value);
    } else {
      output.bindings[statement.bind_name] = *value;
    }
  }
  return output;
}

}  // namespace xsp
}  // namespace xst
