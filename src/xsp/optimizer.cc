#include "src/xsp/optimizer.h"

#include <optional>

#include "src/common/macros.h"
#include "src/core/order.h"
#include "src/cst/relation.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ops/relative.h"

namespace xst {
namespace xsp {

namespace {

bool IsLiteralEmpty(const ExprPtr& e) {
  return e->kind() == ExprKind::kLiteral && e->literal().empty();
}

ExprPtr EmptyLit() { return Expr::Literal(XSet::Empty()); }

// Resolves an expression that is a base table (literal or bound name).
std::optional<XSet> ResolveBase(const ExprPtr& e, const Bindings& bindings) {
  if (e->kind() == ExprKind::kLiteral) return e->literal();
  if (e->kind() == ExprKind::kNamed) {
    auto it = bindings.find(e->name());
    if (it != bindings.end()) return it->second;
  }
  return std::nullopt;
}

class Rewriter {
 public:
  // `stats` must be non-null (Optimize always supplies a sink).
  Rewriter(const Bindings& bindings, OptimizerStats* stats)
      : bindings_(bindings), stats_(stats) {}

  ExprPtr Rewrite(const ExprPtr& expr) {
    if (expr == nullptr) return expr;
    // Bottom-up: rewrite children first, then apply rules at this node.
    ExprPtr node = RebuildWithChildren(expr);
    node = ApplyRules(node);
    return node;
  }

  bool changed() const { return changed_; }

 private:
  ExprPtr RebuildWithChildren(const ExprPtr& expr) {
    if (expr->children().empty()) return expr;
    std::vector<ExprPtr> rewritten;
    bool any = false;
    rewritten.reserve(expr->children().size());
    for (const ExprPtr& child : expr->children()) {
      ExprPtr r = Rewrite(child);
      any |= (r != child);
      rewritten.push_back(std::move(r));
    }
    if (!any) return expr;
    switch (expr->kind()) {
      case ExprKind::kUnion:
        return Expr::Union(rewritten[0], rewritten[1]);
      case ExprKind::kIntersect:
        return Expr::Intersect(rewritten[0], rewritten[1]);
      case ExprKind::kDifference:
        return Expr::Difference(rewritten[0], rewritten[1]);
      case ExprKind::kDomain:
        return Expr::Domain(rewritten[0], expr->sigma().s1);
      case ExprKind::kRestrict:
        return Expr::Restrict(rewritten[0], expr->sigma().s1, rewritten[1]);
      case ExprKind::kImage:
        return Expr::Image(rewritten[0], rewritten[1], expr->sigma());
      case ExprKind::kRelProduct:
        return Expr::RelProduct(rewritten[0], rewritten[1], expr->sigma(), expr->omega());
      case ExprKind::kClosure:
        return Expr::Closure(rewritten[0]);
      case ExprKind::kRange:
        return Expr::Range(rewritten[0], expr->sigma().s1, expr->sigma().s2);
      default:
        return expr;
    }
  }

  void Count(int* counter) {
    changed_ = true;
    ++(*counter);
  }

  ExprPtr ApplyRules(const ExprPtr& e) {
    // R4: empty propagation.
    switch (e->kind()) {
      case ExprKind::kUnion:
        if (IsLiteralEmpty(e->child(0))) {
          Count(&stats_->empty_propagation);
          return e->child(1);
        }
        if (IsLiteralEmpty(e->child(1))) {
          Count(&stats_->empty_propagation);
          return e->child(0);
        }
        break;
      case ExprKind::kIntersect:
        if (IsLiteralEmpty(e->child(0)) || IsLiteralEmpty(e->child(1))) {
          Count(&stats_->empty_propagation);
          return EmptyLit();
        }
        break;
      case ExprKind::kDifference:
        if (IsLiteralEmpty(e->child(0))) {
          Count(&stats_->empty_propagation);
          return EmptyLit();
        }
        if (IsLiteralEmpty(e->child(1))) {
          Count(&stats_->empty_propagation);
          return e->child(0);
        }
        break;
      case ExprKind::kDomain:
        if (IsLiteralEmpty(e->child(0)) || e->sigma().s1.empty()) {
          Count(&stats_->empty_propagation);
          return EmptyLit();
        }
        break;
      case ExprKind::kRestrict:
      case ExprKind::kImage:
        if (IsLiteralEmpty(e->child(0)) || IsLiteralEmpty(e->child(1))) {
          Count(&stats_->empty_propagation);
          return EmptyLit();
        }
        break;
      case ExprKind::kRelProduct:
        if (IsLiteralEmpty(e->child(0)) || IsLiteralEmpty(e->child(1))) {
          Count(&stats_->empty_propagation);
          return EmptyLit();
        }
        break;
      case ExprKind::kClosure:
        if (IsLiteralEmpty(e->child(0))) {
          Count(&stats_->empty_propagation);
          return EmptyLit();
        }
        break;
      case ExprKind::kRange:
        if (IsLiteralEmpty(e->child(0)) ||
            Compare(e->sigma().s1, e->sigma().s2) > 0) {
          Count(&stats_->empty_propagation);
          return EmptyLit();
        }
        break;
      default:
        break;
    }

    // R6: fuse nested element ranges into one interval intersection. The
    // empty-interval case (max lo > min hi) falls to R4 on the next round.
    if (e->kind() == ExprKind::kRange && e->child(0)->kind() == ExprKind::kRange) {
      const ExprPtr& inner = e->child(0);
      const XSet& lo = Compare(e->sigma().s1, inner->sigma().s1) >= 0
                           ? e->sigma().s1
                           : inner->sigma().s1;
      const XSet& hi = Compare(e->sigma().s2, inner->sigma().s2) <= 0
                           ? e->sigma().s2
                           : inner->sigma().s2;
      Count(&stats_->range_fusion);
      return Expr::Range(inner->child(0), lo, hi);
    }

    // R1: fuse 𝔇_{σ₂}(R |_{σ₁} A) into an image node.
    if (e->kind() == ExprKind::kDomain &&
        e->child(0)->kind() == ExprKind::kRestrict) {
      const ExprPtr& restrict_node = e->child(0);
      Count(&stats_->fuse_image);
      return Expr::Image(restrict_node->child(0), restrict_node->child(1),
                         Sigma{restrict_node->sigma().s1, e->sigma().s1});
    }

    // R5: push restriction through a union of carriers.
    if (e->kind() == ExprKind::kRestrict && e->child(0)->kind() == ExprKind::kUnion) {
      const ExprPtr& u = e->child(0);
      Count(&stats_->restrict_pushdown);
      return Expr::Union(Expr::Restrict(u->child(0), e->sigma().s1, e->child(1)),
                         Expr::Restrict(u->child(1), e->sigma().s1, e->child(1)));
    }

    // R3: merge two images of the same carrier and spec over a union.
    if (e->kind() == ExprKind::kUnion &&
        e->child(0)->kind() == ExprKind::kImage &&
        e->child(1)->kind() == ExprKind::kImage) {
      const ExprPtr& left = e->child(0);
      const ExprPtr& right = e->child(1);
      if (left->sigma() == right->sigma() &&
          Expr::Equal(left->child(0), right->child(0))) {
        Count(&stats_->merge_image_probes);
        return Expr::Image(left->child(0),
                           Expr::Union(left->child(1), right->child(1)), left->sigma());
      }
    }

    // R2: compose stacked images of standard pair relations (Theorem 11.2).
    if (e->kind() == ExprKind::kImage && e->child(0) != nullptr &&
        e->child(1)->kind() == ExprKind::kImage && e->sigma() == Sigma::Std()) {
      const ExprPtr& inner = e->child(1);
      if (inner->sigma() == Sigma::Std()) {
        std::optional<XSet> g = ResolveBase(e->child(0), bindings_);
        std::optional<XSet> f = ResolveBase(inner->child(0), bindings_);
        if (g.has_value() && f.has_value() && cst::IsRelation(*g) &&
            cst::IsRelation(*f)) {
          Count(&stats_->compose_images);
          XSet h = RelativeProductStd(*f, *g);
          return Expr::Image(Expr::Literal(h), inner->child(1), Sigma::Std());
        }
      }
    }

    return e;
  }

  const Bindings& bindings_;
  OptimizerStats* stats_;
  bool changed_ = false;
};

}  // namespace

Result<ExprPtr> Optimize(const ExprPtr& expr, const Bindings& bindings,
                         OptimizerStats* stats) {
  if (expr == nullptr) return Status::Invalid("null expression");
  XST_TRACE_SPAN("xsp.optimize");
  OptimizerStats before = stats != nullptr ? *stats : OptimizerStats{};
  OptimizerStats local;
  OptimizerStats* sink = stats != nullptr ? stats : &local;
  ExprPtr current = expr;
  for (int round = 0; round < 16; ++round) {
    Rewriter rewriter(bindings, sink);
    ExprPtr next = rewriter.Rewrite(current);
    if (!rewriter.changed()) break;
    current = next;
  }
  // Mirror this call's rule firings (the sink may be caller-accumulated).
  static obs::Counter& r1 = obs::MetricsRegistry::Global().GetCounter("xsp.optimizer.fuse_image");
  static obs::Counter& r2 =
      obs::MetricsRegistry::Global().GetCounter("xsp.optimizer.compose_images");
  static obs::Counter& r3 =
      obs::MetricsRegistry::Global().GetCounter("xsp.optimizer.merge_image_probes");
  static obs::Counter& r4 =
      obs::MetricsRegistry::Global().GetCounter("xsp.optimizer.empty_propagation");
  static obs::Counter& r5 =
      obs::MetricsRegistry::Global().GetCounter("xsp.optimizer.restrict_pushdown");
  static obs::Counter& r6 =
      obs::MetricsRegistry::Global().GetCounter("xsp.optimizer.range_fusion");
  r6.Add(static_cast<uint64_t>(sink->range_fusion - before.range_fusion));
  r1.Add(static_cast<uint64_t>(sink->fuse_image - before.fuse_image));
  r2.Add(static_cast<uint64_t>(sink->compose_images - before.compose_images));
  r3.Add(static_cast<uint64_t>(sink->merge_image_probes - before.merge_image_probes));
  r4.Add(static_cast<uint64_t>(sink->empty_propagation - before.empty_propagation));
  r5.Add(static_cast<uint64_t>(sink->restrict_pushdown - before.restrict_pushdown));
  return current;
}

}  // namespace xsp
}  // namespace xst
