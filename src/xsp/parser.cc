#include "src/xsp/parser.h"

#include <cctype>

#include "src/common/macros.h"
#include "src/core/parse.h"

namespace xst {
namespace xsp {

namespace {

class PlanParser {
 public:
  explicit PlanParser(std::string_view text) : text_(text) {}

  Result<ExprPtr> ParseAll() {
    Result<ExprPtr> expr = ParseExpr();
    if (!expr.ok()) return expr;
    SkipWs();
    if (pos_ != text_.size()) return Error("trailing characters after plan");
    return expr;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) return Error(std::string("expected '") + c + "'");
    return Status::OK();
  }

  std::string ParseIdent() {
    SkipWs();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (text_[pos_] == '_' || std::isalnum(static_cast<unsigned char>(text_[pos_])))) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  // Scans one balanced core-notation value and parses it with the core
  // parser. Handles nested {} <>, quoted strings, atoms.
  Result<XSet> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Status::ParseError("expected a value at end of plan");
    size_t start = pos_;
    char c = text_[pos_];
    if (c == '{' || c == '<') {
      int depth = 0;
      bool in_string = false;
      while (pos_ < text_.size()) {
        char ch = text_[pos_];
        if (in_string) {
          if (ch == '\\') {
            ++pos_;  // skip the escaped character
          } else if (ch == '"') {
            in_string = false;
          }
        } else if (ch == '"') {
          in_string = true;
        } else if (ch == '{' || ch == '<') {
          ++depth;
        } else if (ch == '}' || ch == '>') {
          --depth;
          if (depth == 0) {
            ++pos_;
            break;
          }
        }
        ++pos_;
      }
      if (depth != 0) return Error("unbalanced value");
    } else if (c == '"') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\') ++pos_;
        ++pos_;
      }
      if (pos_ >= text_.size()) return Error("unterminated string value");
      ++pos_;
    } else if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    } else if (c == '_' || std::isalpha(static_cast<unsigned char>(c))) {
      ParseIdent();
    } else {
      return Error("expected a value");
    }
    return Parse(text_.substr(start, pos_ - start));
  }

  Result<ExprPtr> ParseExpr() {
    SkipWs();
    if (pos_ >= text_.size()) return Status::ParseError("expected an expression");
    char c = text_[pos_];
    if (c == '@') {
      ++pos_;
      std::string name = ParseIdent();
      if (name.empty()) return Error("expected a name after '@'");
      return Expr::Named(std::move(name));
    }
    if (c == '{' || c == '<' || c == '"' || c == '-' ||
        std::isdigit(static_cast<unsigned char>(c))) {
      Result<XSet> value = ParseValue();
      if (!value.ok()) return value.status();
      return Expr::Literal(*value);
    }
    std::string op = ParseIdent();
    if (op == "union" || op == "intersect" || op == "difference") {
      XST_RETURN_NOT_OK(Expect('('));
      Result<ExprPtr> a = ParseExpr();
      if (!a.ok()) return a;
      XST_RETURN_NOT_OK(Expect(','));
      Result<ExprPtr> b = ParseExpr();
      if (!b.ok()) return b;
      XST_RETURN_NOT_OK(Expect(')'));
      if (op == "union") return Expr::Union(*a, *b);
      if (op == "intersect") return Expr::Intersect(*a, *b);
      return Expr::Difference(*a, *b);
    }
    if (op == "closure") {
      XST_RETURN_NOT_OK(Expect('('));
      Result<ExprPtr> r = ParseExpr();
      if (!r.ok()) return r;
      XST_RETURN_NOT_OK(Expect(')'));
      return Expr::Closure(*r);
    }
    if (op == "range") {
      XST_RETURN_NOT_OK(Expect('['));
      Result<XSet> lo = ParseValue();
      if (!lo.ok()) return lo.status();
      XST_RETURN_NOT_OK(Expect(','));
      Result<XSet> hi = ParseValue();
      if (!hi.ok()) return hi.status();
      XST_RETURN_NOT_OK(Expect(']'));
      XST_RETURN_NOT_OK(Expect('('));
      Result<ExprPtr> r = ParseExpr();
      if (!r.ok()) return r;
      XST_RETURN_NOT_OK(Expect(')'));
      return Expr::Range(*r, *lo, *hi);
    }
    if (op == "domain") {
      XST_RETURN_NOT_OK(Expect('['));
      Result<XSet> spec = ParseValue();
      if (!spec.ok()) return spec.status();
      XST_RETURN_NOT_OK(Expect(']'));
      XST_RETURN_NOT_OK(Expect('('));
      Result<ExprPtr> r = ParseExpr();
      if (!r.ok()) return r;
      XST_RETURN_NOT_OK(Expect(')'));
      return Expr::Domain(*r, *spec);
    }
    if (op == "restrict") {
      XST_RETURN_NOT_OK(Expect('['));
      Result<XSet> spec = ParseValue();
      if (!spec.ok()) return spec.status();
      XST_RETURN_NOT_OK(Expect(']'));
      XST_RETURN_NOT_OK(Expect('('));
      Result<ExprPtr> r = ParseExpr();
      if (!r.ok()) return r;
      XST_RETURN_NOT_OK(Expect(','));
      Result<ExprPtr> a = ParseExpr();
      if (!a.ok()) return a;
      XST_RETURN_NOT_OK(Expect(')'));
      return Expr::Restrict(*r, *spec, *a);
    }
    if (op == "image") {
      XST_RETURN_NOT_OK(Expect('['));
      Result<XSet> s1 = ParseValue();
      if (!s1.ok()) return s1.status();
      XST_RETURN_NOT_OK(Expect(','));
      Result<XSet> s2 = ParseValue();
      if (!s2.ok()) return s2.status();
      XST_RETURN_NOT_OK(Expect(']'));
      XST_RETURN_NOT_OK(Expect('('));
      Result<ExprPtr> r = ParseExpr();
      if (!r.ok()) return r;
      XST_RETURN_NOT_OK(Expect(','));
      Result<ExprPtr> a = ParseExpr();
      if (!a.ok()) return a;
      XST_RETURN_NOT_OK(Expect(')'));
      return Expr::Image(*r, *a, Sigma{*s1, *s2});
    }
    if (op == "relprod") {
      XST_RETURN_NOT_OK(Expect('['));
      Result<XSet> s1 = ParseValue();
      if (!s1.ok()) return s1.status();
      XST_RETURN_NOT_OK(Expect(','));
      Result<XSet> s2 = ParseValue();
      if (!s2.ok()) return s2.status();
      XST_RETURN_NOT_OK(Expect(';'));
      Result<XSet> o1 = ParseValue();
      if (!o1.ok()) return o1.status();
      XST_RETURN_NOT_OK(Expect(','));
      Result<XSet> o2 = ParseValue();
      if (!o2.ok()) return o2.status();
      XST_RETURN_NOT_OK(Expect(']'));
      XST_RETURN_NOT_OK(Expect('('));
      Result<ExprPtr> f = ParseExpr();
      if (!f.ok()) return f;
      XST_RETURN_NOT_OK(Expect(','));
      Result<ExprPtr> g = ParseExpr();
      if (!g.ok()) return g;
      XST_RETURN_NOT_OK(Expect(')'));
      return Expr::RelProduct(*f, *g, Sigma{*s1, *s2}, Sigma{*o1, *o2});
    }
    if (op.empty()) return Error("expected an expression");
    return Error("unknown operator '" + op + "'");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParsePlan(std::string_view text) { return PlanParser(text).ParseAll(); }

}  // namespace xsp
}  // namespace xst
