// EXPLAIN ANALYZE for XSP plans: evaluate a plan while attributing wall
// time, output cardinality, rescope-memo traffic, and pager traffic to each
// plan node — the measured form of the paper's Def 11.1 / Thm 11.2 claim
// that composed plans win by never materializing intermediates.
//
// Attribution rides the evaluator's NodeObserver seam (eval.h), so the
// numbers here are the numbers Eval produced, not a re-simulation: node
// cardinalities sum to exactly EvalStats.intermediate_cardinality (over
// non-root, non-leaf nodes), and per-node self times partition the total.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/xsp/eval.h"
#include "src/xsp/expr.h"

namespace xst {
namespace xsp {

/// \brief One annotated plan node (children in operand order).
struct AnalyzeNode {
  /// Operator head ("Image", "Union") or rendered leaf.
  std::string op;
  /// Cardinality of this node's result.
  uint64_t output_cardinality = 0;
  /// True for kLiteral/kNamed nodes (base data, not a materialized
  /// intermediate). In an engine=vm plan, true for every instruction that
  /// did NOT intern a non-result value, so
  /// MaterializedIntermediateCardinality sums exactly the rows the VM
  /// actually interned before the result — 0 for a fully fused chain.
  bool is_leaf = false;
  /// Wall time including children.
  uint64_t wall_ns = 0;
  /// Wall time minus the children's inclusive time.
  uint64_t self_wall_ns = 0;
  /// Rescope-memo hits/misses during this node (children included).
  uint64_t rescope_memo_hits = 0;
  uint64_t rescope_memo_misses = 0;
  /// Pager traffic (fetch hits + misses + allocations) during this node.
  uint64_t pages_touched = 0;
  std::vector<AnalyzeNode> children;
};

/// \brief A finished EXPLAIN ANALYZE run.
struct AnalyzeResult {
  /// The query result (identical to what Eval returns).
  XSet value;
  /// The annotated plan tree.
  AnalyzeNode root;
  /// The same stats Eval (or EvalWithEngine) would have produced.
  EvalStats stats;
  /// Wall time of the whole evaluation.
  uint64_t total_wall_ns = 0;
  /// Which engine produced this run — rendered as the `engine=` column.
  Engine engine = Engine::kInterp;

  /// \brief Sum of output cardinalities over materialized intermediates
  /// (non-root, non-leaf nodes) — matches stats.intermediate_cardinality.
  uint64_t MaterializedIntermediateCardinality() const;

  /// \brief Multi-line annotated plan tree:
  ///   op  (rows=N wall=NNns self=NNns memo=H/M pages=P)
  std::string Render() const;

  /// \brief JSON object: {"total_wall_ns", "nodes_evaluated",
  /// "intermediate_cardinality", "plan": {recursive node objects}}.
  std::string ToJson() const;
};

/// \brief Evaluates `expr` with per-node attribution. Error statuses match
/// Eval's.
Result<AnalyzeResult> ExplainAnalyze(const ExprPtr& expr, const Bindings& bindings);

/// \brief Engine-selectable EXPLAIN ANALYZE. Engine::kInterp attributes per
/// plan node as above; Engine::kVm compiles the plan and attributes per VM
/// instruction (one child node per opcode dispatch, labeled with its
/// disassembly), riding the VmObserver seam so the numbers are the numbers
/// the VM produced.
Result<AnalyzeResult> ExplainAnalyze(const ExprPtr& expr, const Bindings& bindings,
                                     Engine engine);

}  // namespace xsp
}  // namespace xst
