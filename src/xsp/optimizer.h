// The XSP optimizer: algebraic rewrites licensed by the paper.
//
// Rules (each cites its justification):
//
//   R1 fuse-image          𝔇_{σ₂}(R |_{σ₁} A)  →  R[A]_{⟨σ₁,σ₂⟩}
//                          (Def 7.1 read right-to-left; exposes R2.)
//
//   R2 compose-images      G[ F[X]_σ ]_ω  →  H[X]_τ  with H = F /σω G built
//                          once at plan time (Def 11.1 / Theorem 11.2: the
//                          intermediate F[X] is never materialized). Applied
//                          when F and G resolve to classical pair relations
//                          under the standard specification — the shape for
//                          which composed and staged plans agree pointwise.
//
//   R3 merge-image-probes  R[A]_σ ∪ R[B]_σ  →  R[A ∪ B]_σ  (Consequence
//                          C.1 (a)).
//
//   R4 empty-propagation   R[∅]_σ = ∅, ∅[A]_σ = ∅, X ∪ ∅ = X, X ∩ ∅ = ∅,
//                          ∅ ∼ X = ∅, 𝔇_∅(R) = ∅, … (C.1 (g), 7.1 (e)).
//
//   R5 restrict-pushdown   (Q ∪ R) |_σ A  →  (Q |_σ A) ∪ (R |_σ A)
//                          (C.1 (i) lifted to restriction).
//
//   R6 range-fusion        range[l₂,h₂](range[l₁,h₁](R)) →
//                          range[max(l₁,l₂), min(h₁,h₂)](R) (interval
//                          intersection under the structural total order);
//                          an empty interval (lo > hi) or empty carrier
//                          collapses to ∅. Keeping ranges as single nodes
//                          over named leaves is what lets the compiler pick
//                          the ordered-index access path (kLoadRange).
//
// Optimize() applies the rules to fixpoint (bounded), resolving kNamed
// leaves against the bindings when a rule needs carrier values (R2).

#pragma once

#include "src/common/result.h"
#include "src/xsp/expr.h"

namespace xst {
namespace xsp {

struct OptimizerStats {
  int fuse_image = 0;
  int compose_images = 0;
  int merge_image_probes = 0;
  int empty_propagation = 0;
  int restrict_pushdown = 0;
  int range_fusion = 0;

  int total() const {
    return fuse_image + compose_images + merge_image_probes + empty_propagation +
           restrict_pushdown + range_fusion;
  }
};

/// \brief Rewrites `expr` to a plan with the same value on every binding
/// environment that agrees with `bindings` on the names R2 resolved.
Result<ExprPtr> Optimize(const ExprPtr& expr, const Bindings& bindings,
                         OptimizerStats* stats = nullptr);

}  // namespace xsp
}  // namespace xst
