#include "src/xsp/expr.h"

namespace xst {
namespace xsp {

namespace {

std::string SpecToString(const Sigma& sigma) {
  return "<" + sigma.s1.ToString() + ", " + sigma.s2.ToString() + ">";
}

}  // namespace

ExprPtr Expr::Literal(XSet value) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kLiteral;
  node->literal_ = std::move(value);
  return node;
}

ExprPtr Expr::Named(std::string name) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kNamed;
  node->name_ = std::move(name);
  return node;
}

ExprPtr Expr::Union(ExprPtr a, ExprPtr b) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kUnion;
  node->children_ = {std::move(a), std::move(b)};
  return node;
}

ExprPtr Expr::Intersect(ExprPtr a, ExprPtr b) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kIntersect;
  node->children_ = {std::move(a), std::move(b)};
  return node;
}

ExprPtr Expr::Difference(ExprPtr a, ExprPtr b) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kDifference;
  node->children_ = {std::move(a), std::move(b)};
  return node;
}

ExprPtr Expr::Domain(ExprPtr r, XSet spec) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kDomain;
  node->children_ = {std::move(r)};
  node->sigma_.s1 = std::move(spec);
  return node;
}

ExprPtr Expr::Restrict(ExprPtr r, XSet spec, ExprPtr probes) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kRestrict;
  node->children_ = {std::move(r), std::move(probes)};
  node->sigma_.s1 = std::move(spec);
  return node;
}

ExprPtr Expr::Image(ExprPtr r, ExprPtr probes, Sigma sigma) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kImage;
  node->children_ = {std::move(r), std::move(probes)};
  node->sigma_ = std::move(sigma);
  return node;
}

ExprPtr Expr::RelProduct(ExprPtr f, ExprPtr g, Sigma sigma, Sigma omega) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kRelProduct;
  node->children_ = {std::move(f), std::move(g)};
  node->sigma_ = std::move(sigma);
  node->omega_ = std::move(omega);
  return node;
}

ExprPtr Expr::Closure(ExprPtr r) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kClosure;
  node->children_ = {std::move(r)};
  return node;
}

ExprPtr Expr::Range(ExprPtr r, XSet lo, XSet hi) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kRange;
  node->children_ = {std::move(r)};
  node->sigma_ = Sigma{std::move(lo), std::move(hi)};
  return node;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLiteral: {
      std::string text = literal_.ToString();
      if (text.size() > 40) text = text.substr(0, 37) + "...";
      return "lit " + text;
    }
    case ExprKind::kNamed:
      return "@" + name_;
    case ExprKind::kUnion:
      return "union(" + children_[0]->ToString() + ", " + children_[1]->ToString() + ")";
    case ExprKind::kIntersect:
      return "intersect(" + children_[0]->ToString() + ", " + children_[1]->ToString() +
             ")";
    case ExprKind::kDifference:
      return "difference(" + children_[0]->ToString() + ", " + children_[1]->ToString() +
             ")";
    case ExprKind::kDomain:
      return "domain[" + sigma_.s1.ToString() + "](" + children_[0]->ToString() + ")";
    case ExprKind::kRestrict:
      return "restrict[" + sigma_.s1.ToString() + "](" + children_[0]->ToString() + ", " +
             children_[1]->ToString() + ")";
    case ExprKind::kImage:
      return "image[" + SpecToString(sigma_) + "](" + children_[0]->ToString() + ", " +
             children_[1]->ToString() + ")";
    case ExprKind::kRelProduct:
      return "relprod[" + SpecToString(sigma_) + "; " + SpecToString(omega_) + "](" +
             children_[0]->ToString() + ", " + children_[1]->ToString() + ")";
    case ExprKind::kClosure:
      return "closure(" + children_[0]->ToString() + ")";
    case ExprKind::kRange:
      return "range[" + sigma_.s1.ToString() + ", " + sigma_.s2.ToString() + "](" +
             children_[0]->ToString() + ")";
  }
  return "?";
}

bool Expr::Equal(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind_ != b->kind_) return false;
  if (a->literal_ != b->literal_ || a->name_ != b->name_) return false;
  if (!(a->sigma_ == b->sigma_) || !(a->omega_ == b->omega_)) return false;
  if (a->children_.size() != b->children_.size()) return false;
  for (size_t i = 0; i < a->children_.size(); ++i) {
    if (!Equal(a->children_[i], b->children_[i])) return false;
  }
  return true;
}

void CollectNamedLeaves(const ExprPtr& expr, std::vector<std::string>* names) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kNamed) names->push_back(expr->name());
  for (const ExprPtr& child : expr->children()) CollectNamedLeaves(child, names);
}

}  // namespace xsp
}  // namespace xst
