// XSP evaluation with execution statistics.
//
// Evaluation is bottom-up and materializing; EvalStats records how much
// intermediate state a plan touched, which is what the optimizer benchmarks
// compare (composed plans vs. staged plans with materialized intermediates).

#pragma once

#include "src/common/result.h"
#include "src/xsp/expr.h"

namespace xst {
namespace xsp {

struct EvalStats {
  uint64_t nodes_evaluated = 0;
  /// Sum of the cardinalities of every intermediate (non-root) result — the
  /// materialization cost a composed plan avoids.
  uint64_t intermediate_cardinality = 0;
  /// Largest single intermediate.
  uint64_t peak_cardinality = 0;
};

/// \brief Evaluates `expr` against `bindings`. `stats` may be null.
Result<XSet> Eval(const ExprPtr& expr, const Bindings& bindings, EvalStats* stats = nullptr);

/// \brief Which execution engine runs a plan: the tree-walking interpreter
/// or the compiled bytecode VM (compile.h / vm.h).
enum class Engine {
  kInterp,
  kVm,
};

/// \brief "interp" / "vm" — the engine column of reports and EXPLAIN.
const char* EngineName(Engine engine);

/// \brief Engine selected by the XST_ENGINE environment variable ("vm" or
/// "interp"); kInterp when unset or unrecognized.
Engine EngineFromEnv();

/// \brief Evaluates via the chosen engine. Both engines agree on the value
/// (the differential fuzz oracle pins this); stats differ by construction:
/// the interpreter counts every non-root operator output as an
/// intermediate, while the VM — whose fused span chains never intern
/// intermediates — counts nodes as instructions executed and intermediates
/// as rows actually interned before the result.
Result<XSet> EvalWithEngine(Engine engine, const ExprPtr& expr, const Bindings& bindings,
                            EvalStats* stats = nullptr);

/// \brief Multi-line EXPLAIN rendering of a plan.
std::string Explain(const ExprPtr& expr);

namespace internal {

/// \brief Per-node hooks into the recursive evaluator — the seam
/// ExplainAnalyze attributes time and cardinality through, so EXPLAIN
/// ANALYZE and Eval can never disagree about what a plan did.
class NodeObserver {
 public:
  virtual ~NodeObserver() = default;

  /// \brief Called when evaluation of `expr` begins (before its children).
  virtual void EnterNode(const Expr& expr) = 0;

  /// \brief Called when `expr` finished evaluating to `value`; children have
  /// already exited. Not called on error paths (the whole analysis is
  /// discarded with the Status).
  virtual void ExitNode(const Expr& expr, const XSet& value) = 0;
};

/// \brief Eval with per-node observer callbacks. `stats` and `observer` may
/// be null; stats semantics match Eval exactly.
Result<XSet> EvalObserved(const ExprPtr& expr, const Bindings& bindings, EvalStats* stats,
                          NodeObserver* observer);

}  // namespace internal

}  // namespace xsp
}  // namespace xst
