// XSP evaluation with execution statistics.
//
// Evaluation is bottom-up and materializing; EvalStats records how much
// intermediate state a plan touched, which is what the optimizer benchmarks
// compare (composed plans vs. staged plans with materialized intermediates).

#pragma once

#include "src/common/result.h"
#include "src/xsp/expr.h"

namespace xst {
namespace xsp {

struct EvalStats {
  uint64_t nodes_evaluated = 0;
  /// Sum of the cardinalities of every intermediate (non-root) result — the
  /// materialization cost a composed plan avoids.
  uint64_t intermediate_cardinality = 0;
  /// Largest single intermediate.
  uint64_t peak_cardinality = 0;
};

/// \brief Evaluates `expr` against `bindings`. `stats` may be null.
Result<XSet> Eval(const ExprPtr& expr, const Bindings& bindings, EvalStats* stats = nullptr);

/// \brief Multi-line EXPLAIN rendering of a plan.
std::string Explain(const ExprPtr& expr);

}  // namespace xsp
}  // namespace xst
