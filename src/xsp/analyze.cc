#include "src/xsp/analyze.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/macros.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ops/rescope.h"
#include "src/store/pager.h"
#include "src/xsp/compile.h"
#include "src/xsp/verify.h"
#include "src/xsp/vm.h"

namespace xst {
namespace xsp {

namespace {

// Counter deltas are per-process, not per-thread: attribution is exact for
// single-threaded evaluation and approximate when pool workers run chunks
// of a kernel concurrently (their memo probes still land in the enclosing
// node's window, which is the node that spawned them).
uint64_t MemoHitsNow() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(xst::internal::kRescopeMemoHitsCounter);
  return c.value();
}

uint64_t MemoMissesNow() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(xst::internal::kRescopeMemoMissesCounter);
  return c.value();
}

uint64_t PagesTouchedNow() {
  static obs::Counter& hits =
      obs::MetricsRegistry::Global().GetCounter(xst::internal::kPagerHitsCounter);
  static obs::Counter& misses =
      obs::MetricsRegistry::Global().GetCounter(xst::internal::kPagerMissesCounter);
  static obs::Counter& allocs =
      obs::MetricsRegistry::Global().GetCounter(xst::internal::kPagerAllocationsCounter);
  return hits.value() + misses.value() + allocs.value();
}

// Operator head ("Image") for interior nodes; the rendered value for
// leaves, truncated so giant literals don't flood the tree. Interior labels
// must not call ToString(): the root's label is built after its exit
// timestamp, and rendering a large plan there would put visible time inside
// total_wall_ns but outside every node's window, breaking the self-time
// partition.
std::string NodeLabel(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kUnion:
      return "Union";
    case ExprKind::kIntersect:
      return "Intersect";
    case ExprKind::kDifference:
      return "Difference";
    case ExprKind::kDomain:
      return "Domain";
    case ExprKind::kRestrict:
      return "Restrict";
    case ExprKind::kImage:
      return "Image";
    case ExprKind::kRelProduct:
      return "RelProduct";
    case ExprKind::kClosure:
      return "Closure";
    case ExprKind::kLiteral:
    case ExprKind::kNamed:
      break;
  }
  std::string text = expr.ToString();
  constexpr size_t kMaxLeaf = 40;
  if (text.size() > kMaxLeaf) {
    text.resize(kMaxLeaf);
    text.append("...");
  }
  return text;
}

class Analyzer : public internal::NodeObserver {
 public:
  void EnterNode(const Expr& expr) override {
    Frame frame;
    frame.expr = &expr;
    frame.memo_hits0 = MemoHitsNow();
    frame.memo_misses0 = MemoMissesNow();
    frame.pages0 = PagesTouchedNow();
    frame.start_ns = obs::MonotonicNowNs();  // last: exclude snapshot cost
    stack_.push_back(std::move(frame));
  }

  void ExitNode(const Expr& expr, const XSet& value) override {
    const uint64_t now = obs::MonotonicNowNs();
    XST_CHECK(!stack_.empty() && stack_.back().expr == &expr);
    Frame frame = std::move(stack_.back());
    stack_.pop_back();
    AnalyzeNode node;
    node.op = NodeLabel(expr);
    node.output_cardinality = value.cardinality();
    node.is_leaf =
        expr.kind() == ExprKind::kLiteral || expr.kind() == ExprKind::kNamed;
    node.wall_ns = now - frame.start_ns;
    uint64_t children_ns = 0;
    for (const AnalyzeNode& child : frame.children) children_ns += child.wall_ns;
    node.self_wall_ns = node.wall_ns > children_ns ? node.wall_ns - children_ns : 0;
    node.rescope_memo_hits = MemoHitsNow() - frame.memo_hits0;
    node.rescope_memo_misses = MemoMissesNow() - frame.memo_misses0;
    node.pages_touched = PagesTouchedNow() - frame.pages0;
    node.children = std::move(frame.children);
    if (stack_.empty()) {
      root_ = std::move(node);
    } else {
      stack_.back().children.push_back(std::move(node));
    }
  }

  AnalyzeNode TakeRoot() { return std::move(root_); }

 private:
  struct Frame {
    const Expr* expr = nullptr;
    uint64_t start_ns = 0;
    uint64_t memo_hits0 = 0;
    uint64_t memo_misses0 = 0;
    uint64_t pages0 = 0;
    std::vector<AnalyzeNode> children;
  };

  std::vector<Frame> stack_;
  AnalyzeNode root_;
};

// Per-instruction attribution for compiled plans: one flat AnalyzeNode per
// opcode dispatch, labeled with its line from `listing` (the verifier's
// typed disassembly), timed by the VM itself (self == wall for
// straight-line code) and window-delta'd against the same memo/pager
// counters the interpreter analyzer uses.
class VmAnalyzer : public VmObserver {
 public:
  explicit VmAnalyzer(const std::string& listing) {
    size_t pos = 0;
    while (pos < listing.size()) {
      size_t eol = listing.find('\n', pos);
      if (eol == std::string::npos) eol = listing.size();
      labels_.push_back(listing.substr(pos, eol - pos));
      pos = eol + 1;
    }
  }

  void OnInstrStart(size_t pc) override {
    (void)pc;
    memo_hits0_ = MemoHitsNow();
    memo_misses0_ = MemoMissesNow();
    pages0_ = PagesTouchedNow();
  }

  void OnInstr(size_t pc, const Instr& instr, uint64_t out_rows, bool out_interned,
               bool interned_intermediate, uint64_t self_ns) override {
    (void)instr;
    (void)out_interned;
    AnalyzeNode node;
    node.op = pc < labels_.size() ? labels_[pc] : "?";
    node.output_cardinality = out_rows;
    node.is_leaf = !interned_intermediate;
    node.wall_ns = self_ns;
    node.self_wall_ns = self_ns;
    node.rescope_memo_hits = MemoHitsNow() - memo_hits0_;
    node.rescope_memo_misses = MemoMissesNow() - memo_misses0_;
    node.pages_touched = PagesTouchedNow() - pages0_;
    instrs_.push_back(std::move(node));
  }

  // The synthetic root: the whole program, with the per-instruction nodes
  // as children in execution order.
  AnalyzeNode BuildRoot(uint64_t result_rows, uint64_t total_wall_ns) {
    AnalyzeNode root;
    root.op = "VmProgram[" + std::to_string(instrs_.size()) + "]";
    root.output_cardinality = result_rows;
    root.is_leaf = false;
    root.wall_ns = total_wall_ns;
    uint64_t children_ns = 0;
    for (const AnalyzeNode& child : instrs_) children_ns += child.wall_ns;
    root.self_wall_ns = total_wall_ns > children_ns ? total_wall_ns - children_ns : 0;
    root.children = std::move(instrs_);
    return root;
  }

 private:
  std::vector<std::string> labels_;
  std::vector<AnalyzeNode> instrs_;
  uint64_t memo_hits0_ = 0;
  uint64_t memo_misses0_ = 0;
  uint64_t pages0_ = 0;
};

uint64_t SumIntermediates(const AnalyzeNode& node, bool is_root) {
  uint64_t total = 0;
  if (!is_root && !node.is_leaf) total += node.output_cardinality;
  for (const AnalyzeNode& child : node.children) {
    total += SumIntermediates(child, /*is_root=*/false);
  }
  return total;
}

void RenderNode(const AnalyzeNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.op);
  out->append("  (rows=").append(std::to_string(node.output_cardinality));
  out->append(" wall=").append(std::to_string(node.wall_ns)).append("ns");
  out->append(" self=").append(std::to_string(node.self_wall_ns)).append("ns");
  out->append(" memo=").append(std::to_string(node.rescope_memo_hits));
  out->append("/").append(std::to_string(node.rescope_memo_misses));
  out->append(" pages=").append(std::to_string(node.pages_touched));
  out->append(")\n");
  for (const AnalyzeNode& child : node.children) RenderNode(child, depth + 1, out);
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->push_back(' ');
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NodeToJson(const AnalyzeNode& node, std::string* out) {
  out->append("{\"op\": ");
  AppendJsonEscaped(node.op, out);
  out->append(", \"rows\": ").append(std::to_string(node.output_cardinality));
  out->append(", \"leaf\": ").append(node.is_leaf ? "true" : "false");
  out->append(", \"wall_ns\": ").append(std::to_string(node.wall_ns));
  out->append(", \"self_wall_ns\": ").append(std::to_string(node.self_wall_ns));
  out->append(", \"memo_hits\": ").append(std::to_string(node.rescope_memo_hits));
  out->append(", \"memo_misses\": ").append(std::to_string(node.rescope_memo_misses));
  out->append(", \"pages\": ").append(std::to_string(node.pages_touched));
  out->append(", \"children\": [");
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) out->append(", ");
    NodeToJson(node.children[i], out);
  }
  out->append("]}");
}

}  // namespace

uint64_t AnalyzeResult::MaterializedIntermediateCardinality() const {
  return SumIntermediates(root, /*is_root=*/true);
}

std::string AnalyzeResult::Render() const {
  std::string out;
  RenderNode(root, 0, &out);
  out.append("total: ").append(std::to_string(total_wall_ns)).append("ns, ");
  out.append(std::to_string(stats.nodes_evaluated)).append(" nodes, ");
  out.append("intermediate rows: ")
      .append(std::to_string(stats.intermediate_cardinality));
  out.append(", engine: ").append(EngineName(engine)).append("\n");
  return out;
}

std::string AnalyzeResult::ToJson() const {
  std::string out = "{\"engine\": \"";
  out.append(EngineName(engine));
  out.append("\", \"total_wall_ns\": ");
  out.append(std::to_string(total_wall_ns));
  out.append(", \"nodes_evaluated\": ").append(std::to_string(stats.nodes_evaluated));
  out.append(", \"intermediate_cardinality\": ")
      .append(std::to_string(stats.intermediate_cardinality));
  out.append(", \"plan\": ");
  NodeToJson(root, &out);
  out.append("}");
  return out;
}

Result<AnalyzeResult> ExplainAnalyze(const ExprPtr& expr, const Bindings& bindings) {
  XST_TRACE_SPAN("xsp.explain_analyze");
  Analyzer analyzer;
  AnalyzeResult result;
  const uint64_t start = obs::MonotonicNowNs();
  Result<XSet> value = internal::EvalObserved(expr, bindings, &result.stats, &analyzer);
  result.total_wall_ns = obs::MonotonicNowNs() - start;
  if (!value.ok()) return value.status();
  result.value = std::move(*value);
  result.root = analyzer.TakeRoot();
  return result;
}

Result<AnalyzeResult> ExplainAnalyze(const ExprPtr& expr, const Bindings& bindings,
                                     Engine engine) {
  if (engine == Engine::kInterp) return ExplainAnalyze(expr, bindings);
  XST_TRACE_SPAN("xsp.explain_analyze");
  XST_ASSIGN_OR_RAISE(Program program, Compile(expr));
  // Verify unconditionally here (EXPLAIN is diagnostic, not a hot path):
  // the proof's typed listing is what labels the per-instruction rows.
  XST_ASSIGN_OR_RAISE(VerifiedProgram verified, Verify(std::move(program)));
  VmAnalyzer analyzer(verified.ToString());
  AnalyzeResult result;
  result.engine = Engine::kVm;
  VmContext ctx;
  VmStats vm_stats;
  const uint64_t start = obs::MonotonicNowNs();
  Result<XSet> value =
      VmEval(verified.program(), bindings, &ctx, &vm_stats, &analyzer);
  result.total_wall_ns = obs::MonotonicNowNs() - start;
  if (!value.ok()) return value.status();
  result.value = std::move(*value);
  result.stats.nodes_evaluated = vm_stats.instructions;
  result.stats.intermediate_cardinality = vm_stats.interned_intermediate_rows;
  result.stats.peak_cardinality = vm_stats.peak_rows;
  result.root = analyzer.BuildRoot(result.value.cardinality(), result.total_wall_ns);
  return result;
}

}  // namespace xsp
}  // namespace xst
