// XSP expressions: an algebra of extended-set operations as data.
//
// XSP ("extended set processing") is the execution face of the theory: a
// query is a tree of set operators, evaluation is bottom-up, and — because
// the operators obey the paper's algebraic identities — trees can be
// rewritten before execution (see optimizer.h). Named leaves resolve
// against a binding environment (in-memory map or a SetStore snapshot).

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/xset.h"
#include "src/ops/image.h"

namespace xst {
namespace xsp {

enum class ExprKind {
  kLiteral,     ///< an embedded constant set
  kNamed,       ///< a named set, resolved at evaluation time
  kUnion,       ///< children[0] ∪ children[1]
  kIntersect,   ///< children[0] ∩ children[1]
  kDifference,  ///< children[0] ∼ children[1]
  kDomain,      ///< 𝔇_{spec}(children[0])
  kRestrict,    ///< children[0] |_{spec} children[1]
  kImage,       ///< children[0][children[1]]_{⟨spec, spec2⟩}
  kRelProduct,  ///< children[0] /σω children[1]
  kClosure,     ///< transitive closure (children[0])⁺ of a pair relation
  kRange,       ///< {z^w ∈ children[0] : lo ≤ z ≤ hi} (element interval)
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief An immutable expression node. Build via the factory functions.
class Expr {
 public:
  ExprKind kind() const { return kind_; }
  const XSet& literal() const { return literal_; }
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }
  /// σ for kDomain/kRestrict (in .s1) and kImage; σ of the left operand for
  /// kRelProduct; the interval bounds ⟨lo, hi⟩ for kRange.
  const Sigma& sigma() const { return sigma_; }
  /// ω of the right operand for kRelProduct.
  const Sigma& omega() const { return omega_; }

  /// \brief Structural description for EXPLAIN output.
  std::string ToString() const;

  /// \brief Structural equality (used by rewrite rules to match shared
  /// subtrees).
  static bool Equal(const ExprPtr& a, const ExprPtr& b);

  // Factories.
  static ExprPtr Literal(XSet value);
  static ExprPtr Named(std::string name);
  static ExprPtr Union(ExprPtr a, ExprPtr b);
  static ExprPtr Intersect(ExprPtr a, ExprPtr b);
  static ExprPtr Difference(ExprPtr a, ExprPtr b);
  static ExprPtr Domain(ExprPtr r, XSet spec);
  static ExprPtr Restrict(ExprPtr r, XSet spec, ExprPtr probes);
  static ExprPtr Image(ExprPtr r, ExprPtr probes, Sigma sigma);
  static ExprPtr RelProduct(ExprPtr f, ExprPtr g, Sigma sigma, Sigma omega);
  static ExprPtr Closure(ExprPtr r);
  static ExprPtr Range(ExprPtr r, XSet lo, XSet hi);

 private:
  Expr() = default;
  ExprKind kind_ = ExprKind::kLiteral;
  XSet literal_;
  std::string name_;
  std::vector<ExprPtr> children_;
  Sigma sigma_{XSet::Empty(), XSet::Empty()};
  Sigma omega_{XSet::Empty(), XSet::Empty()};
};

/// \brief Name → set bindings for kNamed leaves.
using Bindings = std::map<std::string, XSet>;

/// \brief Appends the names of every kNamed leaf in the plan (with
/// duplicates) — used to resolve dependencies before evaluation.
void CollectNamedLeaves(const ExprPtr& expr, std::vector<std::string>* names);

}  // namespace xsp
}  // namespace xst
