// XSP scripts: multi-statement programs over the surface language.
//
//   # comments and blank lines are ignored
//   friends = {<ann, bob>, <bob, cho>}
//   two_hop = image[<1>, <2>](@friends, image[<1>, <2>](@friends, {<ann>}))
//   @two_hop                      # expression statements produce output
//
// A script is parsed once (all plans validated up front) and can be run
// against different initial bindings. Name statements extend the
// environment for subsequent statements; expression statements append to
// the result list.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/xsp/eval.h"
#include "src/xsp/expr.h"

namespace xst {
namespace xsp {

struct Statement {
  std::string bind_name;  ///< empty for expression statements
  ExprPtr plan;
  std::string source;  ///< the original line, for error messages
};

struct Script {
  std::vector<Statement> statements;
};

/// \brief Parses a whole script; fails on the first malformed statement
/// with its line number.
Result<Script> ParseScript(std::string_view text);

struct ScriptOutput {
  /// One entry per *expression* statement, in order.
  std::vector<XSet> results;
  /// The environment after the last statement (initial ∪ script bindings).
  Bindings bindings;
};

/// \brief Runs every statement against `initial` (later statements see
/// earlier bindings). Optimization is applied per statement when
/// `optimize` is set. `engine` picks the evaluator per statement and
/// defaults to the XST_ENGINE environment selection (eval.h), so
/// `XST_ENGINE=vm` flips a whole script run to compiled execution without
/// touching call sites.
Result<ScriptOutput> RunScript(const Script& script, Bindings initial,
                               bool optimize = false,
                               Engine engine = EngineFromEnv());

}  // namespace xsp
}  // namespace xst
