// A register VM executing compiled XSP programs (compile.h) over batched
// membership spans.
//
// Registers hold either an interned XSet handle or a raw canonical
// membership span living in a VmContext scratch buffer. The span kernels
// (src/ops/span_kernels.h) keep every result canonical, so a fused
// restrict∘image∘boolean chain flows span → span → span and only the final
// kMaterialize interns — via XSet::FromSortedMembers, validated at the Vm
// tier (XST_VM_VALIDATE in src/common/check.h). Operands stream in through
// the MemberCursor abstraction (src/core/cursor.h), uniformly for
// in-memory bindings and SetStore-resident sets.
//
// The VmContext is the per-execution scratch arena, reusing the PR1
// RelativeProduct arena pattern at program granularity: buffers are cleared
// but never shrunk between executions, so a hot program's steady state
// allocates nothing, and root-level ImageIndex access paths persist in it
// across executions of the same carrier.
//
// Observability: every dispatch runs under a per-opcode XST_TRACE_SPAN
// ("vm.union", "vm.image", ...), per-opcode counters land in the metrics
// registry under "xsp.vm.op.<name>", and the VmObserver seam feeds EXPLAIN
// ANALYZE's engine=vm mode (analyze.h) with per-instruction rows/self-time.

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/core/cursor.h"
#include "src/ops/image.h"
#include "src/ops/index.h"
#include "src/xsp/compile.h"

namespace xst {
namespace xsp {

namespace internal {
class VmExecutor;
}  // namespace internal

/// \brief Execution statistics for one (or more, when accumulated) VM runs.
///
/// The VM's materialization accounting is intentionally different from
/// EvalStats: the interpreter counts every non-root operator output
/// (everything it materializes), the VM counts only what actually reached
/// the interner — which for a fused span chain is nothing but the root.
struct VmStats {
  uint64_t instructions = 0;
  /// FromSortedMembers interns performed (the root's counts too).
  uint64_t materializations = 0;
  /// Total rows of interned non-result values — 0 for a fully fused chain.
  uint64_t interned_intermediate_rows = 0;
  /// Largest register value produced (span or interned), in rows.
  uint64_t peak_rows = 0;
};

/// \brief Per-instruction hooks, the engine seam EXPLAIN ANALYZE rides in
/// engine=vm mode. Self-time is measured by the VM (dispatch to dispatch)
/// only while an observer is installed.
class VmObserver {
 public:
  virtual ~VmObserver() = default;

  /// \brief Called before instruction `pc` dispatches (counter snapshots).
  virtual void OnInstrStart(size_t pc) = 0;

  /// \brief Called after instruction `pc` produced `out_rows` rows
  /// (interned handle or span) in `self_ns` nanoseconds.
  /// `interned_intermediate` is true exactly when the instruction interned
  /// a non-result value — the rows VmStats::interned_intermediate_rows
  /// accumulates, so an observer's per-instruction view can reconstruct the
  /// stats totals exactly.
  virtual void OnInstr(size_t pc, const Instr& instr, uint64_t out_rows,
                       bool out_interned, bool interned_intermediate,
                       uint64_t self_ns) = 0;
};

/// \brief Reusable per-execution scratch state: one arena buffer per
/// register plus the ImageIndex cache for kIndex access paths.
class VmContext {
 public:
  VmContext() = default;
  ~VmContext();
  VmContext(const VmContext&) = delete;
  VmContext& operator=(const VmContext&) = delete;

  /// \brief Number of register buffers currently held.
  size_t arena_buffers() const { return buffers_.size(); }

  /// \brief Total Membership slots reserved across buffers — steady under
  /// repeated execution of the same program (the arena-reuse invariant the
  /// tests pin down).
  size_t arena_capacity() const;

  /// \brief Resident ImageIndex access paths.
  size_t index_cache_size() const { return index_cache_.size(); }

 private:
  friend class internal::VmExecutor;

  struct IndexKey {
    const void* r;
    const void* s1;
    const void* s2;
    bool operator==(const IndexKey& o) const {
      return r == o.r && s1 == o.s1 && s2 == o.s2;
    }
  };
  struct IndexKeyHash {
    size_t operator()(const IndexKey& k) const;
  };

  std::vector<std::vector<Membership>> buffers_;
  std::unordered_map<IndexKey, std::unique_ptr<ImageIndex>, IndexKeyHash> index_cache_;
};

/// \brief Executes `program`, resolving kLoadBinding operands through
/// `source`. `ctx`, `stats` and `observer` may be null; a null `ctx` uses a
/// throwaway arena.
Result<XSet> VmEval(const Program& program, const CursorSource& source,
                    VmContext* ctx = nullptr, VmStats* stats = nullptr,
                    VmObserver* observer = nullptr);

/// \brief Convenience overload over an in-memory binding environment.
Result<XSet> VmEval(const Program& program, const Bindings& bindings,
                    VmContext* ctx = nullptr, VmStats* stats = nullptr,
                    VmObserver* observer = nullptr);

}  // namespace xsp
}  // namespace xst
