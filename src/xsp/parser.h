// A textual surface language for XSP plans.
//
//   plan     := expr
//   expr     := '@' name                               named stored set
//             | set-literal                            core XST notation
//             | 'union' '(' expr ',' expr ')'
//             | 'intersect' '(' expr ',' expr ')'
//             | 'difference' '(' expr ',' expr ')'
//             | 'domain' '[' value ']' '(' expr ')'
//             | 'restrict' '[' value ']' '(' expr ',' expr ')'
//             | 'image' '[' value ',' value ']' '(' expr ',' expr ')'
//             | 'relprod' '[' value ',' value ';' value ',' value ']'
//                        '(' expr ',' expr ')'
//   value    := any value in the core notation ({a^1}, <1, 2>, 7, name, …)
//
// Examples:
//   image[<1>, <2>](@friends, {<ann>})
//   union(domain[<1>](@orders), {<sentinel>})
//   relprod[<1>, <2>; <1>, {2^2}](@f, @g)
//
// Bare identifiers are operator names only; data always appears as @names
// or literals, so the grammar stays unambiguous.

#pragma once

#include <string_view>

#include "src/common/result.h"
#include "src/xsp/expr.h"

namespace xst {
namespace xsp {

/// \brief Parses one complete plan; trailing garbage is a ParseError.
Result<ExprPtr> ParsePlan(std::string_view text);

}  // namespace xsp
}  // namespace xst
