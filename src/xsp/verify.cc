#include "src/xsp/verify.h"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "src/common/check.h"
#include "src/common/macros.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace xst {
namespace xsp {

namespace {

void CountVerification(bool accepted) {
  static obs::Counter& programs =
      obs::MetricsRegistry::Global().GetCounter("xsp.verify.programs");
  static obs::Counter& rejections =
      obs::MetricsRegistry::Global().GetCounter("xsp.verify.rejections");
  programs.Increment();
  if (!accepted) rejections.Increment();
}

Status Fail(size_t pc, OpCode op, const std::string& message) {
  return Status::Invalid("verify: instr " + std::to_string(pc) + " (" +
                         OpCodeName(op) + "): " + message);
}

// One abstract step. `types` is the register state before the instruction;
// on success it reflects the state after, and `judgment` records the
// operand types consumed (register operands only) and the dst type
// produced. The switch must stay exhaustive with no default so a new
// opcode cannot execute unverified (vm-opcode-dispatch lint rule).
Status Step(const Program& p, size_t pc, std::vector<RegType>& types,
            InstrTypes* judgment) {
  const Instr& in = p.code[pc];
  if (static_cast<size_t>(in.op) >= kNumOpCodes) {
    return Status::Invalid("verify: instr " + std::to_string(pc) +
                           ": invalid opcode byte " +
                           std::to_string(static_cast<unsigned>(in.op)));
  }
  if (in.dst >= p.num_regs) {
    return Fail(pc, in.op,
                "dst r" + std::to_string(in.dst) + " out of range (num_regs=" +
                    std::to_string(p.num_regs) + ")");
  }

  // Field-shape helpers shared by the cases below. Every rule reports the
  // instruction index through Fail().
  auto require_zero = [&](uint16_t field, const char* what) -> Status {
    if (field != 0) {
      return Fail(pc, in.op, std::string("unused ") + what +
                                 " field must be 0, got " + std::to_string(field));
    }
    return Status::OK();
  };
  auto table_index = [&](uint16_t index, size_t size, const char* table) -> Status {
    if (index >= size) {
      return Fail(pc, in.op, std::string(table) + " index " + std::to_string(index) +
                                 " out of range [0," + std::to_string(size) + ")");
    }
    return Status::OK();
  };
  auto reg_operand = [&](uint16_t reg, RegType* seen) -> Status {
    if (reg >= p.num_regs) {
      return Fail(pc, in.op, "operand r" + std::to_string(reg) +
                                 " out of range (num_regs=" +
                                 std::to_string(p.num_regs) + ")");
    }
    if (types[reg] == RegType::kUninit) {
      return Fail(pc, in.op,
                  "operand r" + std::to_string(reg) + " used before definition");
    }
    *seen = types[reg];
    return Status::OK();
  };
  auto interned_operand = [&](uint16_t reg, RegType* seen) -> Status {
    XST_RETURN_NOT_OK(reg_operand(reg, seen));
    if (!IsInterned(*seen)) {
      return Fail(pc, in.op, "operand r" + std::to_string(reg) + " has type " +
                                 RegTypeName(*seen) +
                                 "; a statically interned carrier (handle or "
                                 "materialized) is required");
    }
    return Status::OK();
  };
  // Single assignment: kMaterialize transitions in place (handled in its
  // case); every other opcode must write a fresh register.
  auto fresh_dst = [&](RegType result) -> Status {
    if (types[in.dst] != RegType::kUninit) {
      return Fail(pc, in.op, "dst r" + std::to_string(in.dst) +
                                 " already defined (single-assignment violation)");
    }
    types[in.dst] = result;
    judgment->dst_after = result;
    return Status::OK();
  };

  switch (in.op) {
    case OpCode::kLoadLiteral: {
      XST_RETURN_NOT_OK(table_index(in.a, p.literals.size(), "literal"));
      XST_RETURN_NOT_OK(require_zero(in.b, "b"));
      XST_RETURN_NOT_OK(require_zero(in.spec, "spec"));
      return fresh_dst(RegType::kHandle);
    }
    case OpCode::kLoadBinding: {
      XST_RETURN_NOT_OK(table_index(in.a, p.names.size(), "binding name"));
      XST_RETURN_NOT_OK(require_zero(in.b, "b"));
      XST_RETURN_NOT_OK(require_zero(in.spec, "spec"));
      // A binding may stream in as a raw span or resolve to a whole interned
      // set; span is the sound join of the two.
      return fresh_dst(RegType::kSpan);
    }
    case OpCode::kUnion:
    case OpCode::kIntersect:
    case OpCode::kDifference: {
      XST_RETURN_NOT_OK(require_zero(in.spec, "spec"));
      XST_RETURN_NOT_OK(reg_operand(in.a, &judgment->a_before));
      XST_RETURN_NOT_OK(reg_operand(in.b, &judgment->b_before));
      return fresh_dst(RegType::kSpan);
    }
    case OpCode::kRescope: {
      XST_RETURN_NOT_OK(require_zero(in.b, "b"));
      XST_RETURN_NOT_OK(table_index(in.spec, p.specs.size(), "spec"));
      XST_RETURN_NOT_OK(reg_operand(in.a, &judgment->a_before));
      return fresh_dst(RegType::kSpan);
    }
    case OpCode::kRestrict:
    case OpCode::kImage: {
      XST_RETURN_NOT_OK(table_index(in.spec, p.specs.size(), "spec"));
      XST_RETURN_NOT_OK(reg_operand(in.a, &judgment->a_before));
      XST_RETURN_NOT_OK(reg_operand(in.b, &judgment->b_before));
      return fresh_dst(RegType::kSpan);
    }
    case OpCode::kIndex:
    case OpCode::kRelProduct: {
      XST_RETURN_NOT_OK(table_index(in.spec, p.specs.size(), "spec"));
      XST_RETURN_NOT_OK(interned_operand(in.a, &judgment->a_before));
      XST_RETURN_NOT_OK(interned_operand(in.b, &judgment->b_before));
      return fresh_dst(RegType::kHandle);
    }
    case OpCode::kClosure: {
      XST_RETURN_NOT_OK(require_zero(in.b, "b"));
      XST_RETURN_NOT_OK(require_zero(in.spec, "spec"));
      XST_RETURN_NOT_OK(interned_operand(in.a, &judgment->a_before));
      return fresh_dst(RegType::kHandle);
    }
    case OpCode::kRange: {
      XST_RETURN_NOT_OK(require_zero(in.b, "b"));
      XST_RETURN_NOT_OK(table_index(in.spec, p.specs.size(), "spec"));
      XST_RETURN_NOT_OK(reg_operand(in.a, &judgment->a_before));
      return fresh_dst(RegType::kSpan);
    }
    case OpCode::kLoadRange: {
      XST_RETURN_NOT_OK(table_index(in.a, p.names.size(), "binding name"));
      XST_RETURN_NOT_OK(require_zero(in.b, "b"));
      XST_RETURN_NOT_OK(table_index(in.spec, p.specs.size(), "spec"));
      // Like kLoadBinding: may stream as a span or resolve whole; span is
      // the sound join.
      return fresh_dst(RegType::kSpan);
    }
    case OpCode::kMaterialize: {
      XST_RETURN_NOT_OK(require_zero(in.b, "b"));
      XST_RETURN_NOT_OK(require_zero(in.spec, "spec"));
      if (in.a != in.dst) {
        return Fail(pc, in.op,
                    "materialize must target its own register (a == dst), got a=r" +
                        std::to_string(in.a) + " dst=r" + std::to_string(in.dst));
      }
      if (types[in.dst] == RegType::kUninit) {
        return Fail(pc, in.op, "materialize of undefined register r" +
                                   std::to_string(in.dst));
      }
      judgment->a_before = types[in.dst];
      types[in.dst] = RegType::kMaterialized;
      judgment->dst_after = RegType::kMaterialized;
      return Status::OK();
    }
  }
  // Unreachable: the opcode byte was range-checked above and the switch is
  // exhaustive.
  return Status::Invalid("verify: instr " + std::to_string(pc) +
                         ": unhandled opcode");
}

// The full judgment. `types_out` may be null (VerifyProgram's status-only
// fast path); when non-null it receives one InstrTypes per instruction.
Status Interpret(const Program& p, std::vector<InstrTypes>* types_out) {
  XST_TRACE_SPAN("xsp.verify");
  if (p.code.empty()) {
    return Status::Invalid("verify: empty program");
  }
  if (p.code.size() > kMaxProgramLength) {
    return Status::Invalid("verify: program length " + std::to_string(p.code.size()) +
                           " exceeds limit " + std::to_string(kMaxProgramLength));
  }
  if (p.num_regs == 0) {
    return Status::Invalid("verify: program declares zero registers");
  }

  std::vector<RegType> types(p.num_regs, RegType::kUninit);
  if (types_out != nullptr) {
    types_out->assign(p.code.size(), InstrTypes{});
  }
  const uint16_t root = p.code.back().dst;
  for (size_t pc = 0; pc < p.code.size(); ++pc) {
    InstrTypes scratch;
    InstrTypes* judgment =
        types_out != nullptr ? &(*types_out)[pc] : &scratch;
    XST_RETURN_NOT_OK(Step(p, pc, types, judgment));
    // (d) no instruction after the root materialization: once the result
    // register is pinned by kMaterialize, the program is over.
    if (pc + 1 < p.code.size() && p.code[pc].op == OpCode::kMaterialize &&
        p.code[pc].dst == root) {
      return Fail(pc, p.code[pc].op,
                  "root register r" + std::to_string(root) +
                      " materialized before the final instruction");
    }
  }
  if (p.code.back().op != OpCode::kMaterialize) {
    return Fail(p.code.size() - 1, p.code.back().op,
                "program must end with a kMaterialize of the root register");
  }
  // Structural completeness: the compiler defines every register it
  // allocates, so an undefined register means num_regs (or the code) is
  // corrupt — and the VM would pin an arena buffer for it regardless.
  for (uint16_t r = 0; r < p.num_regs; ++r) {
    if (types[r] == RegType::kUninit) {
      return Status::Invalid("verify: register r" + std::to_string(r) +
                             " allocated but never defined (num_regs=" +
                             std::to_string(p.num_regs) + ")");
    }
  }
  return Status::OK();
}

}  // namespace

const char* RegTypeName(RegType type) {
  switch (type) {
    case RegType::kUninit:
      return "uninit";
    case RegType::kSpan:
      return "span";
    case RegType::kHandle:
      return "handle";
    case RegType::kMaterialized:
      return "materialized";
  }
  return "?";
}

std::string VerifiedProgram::ToString() const {
  // Annotate the plain disassembly line-by-line with the type judgments.
  const std::string disasm = program_.ToString();
  std::string out;
  size_t pos = 0;
  size_t pc = 0;
  while (pos < disasm.size() && pc < instr_types_.size()) {
    size_t eol = disasm.find('\n', pos);
    if (eol == std::string::npos) eol = disasm.size();
    out.append(disasm, pos, eol - pos);
    const Instr& in = program_.code[pc];
    const InstrTypes& jt = instr_types_[pc];
    out.append("   ; ");
    bool first = true;
    if (jt.a_before != RegType::kUninit) {
      const uint16_t reg = in.op == OpCode::kMaterialize ? in.dst : in.a;
      out.append("r").append(std::to_string(reg)).append(":");
      out.append(RegTypeName(jt.a_before));
      first = false;
    }
    if (jt.b_before != RegType::kUninit) {
      if (!first) out.append(", ");
      out.append("r").append(std::to_string(in.b)).append(":");
      out.append(RegTypeName(jt.b_before));
      first = false;
    }
    if (!first) out.append(" ");
    out.append("-> r").append(std::to_string(in.dst)).append(":");
    out.append(RegTypeName(jt.dst_after));
    out.push_back('\n');
    pos = eol + 1;
    ++pc;
  }
  return out;
}

Result<VerifiedProgram> Verify(Program program) {
  VerifiedProgram verified;
  Status st = Interpret(program, &verified.instr_types_);
  CountVerification(st.ok());
  if (!st.ok()) return st;
  verified.root_reg_ = program.code.back().dst;
  verified.program_ = std::move(program);
  return verified;
}

Status VerifyProgram(const Program& program) {
  Status st = Interpret(program, nullptr);
  CountVerification(st.ok());
  return st;
}

bool VmVerifyEnabled() {
#if XST_VALIDATE_LEVEL >= 1
  return true;
#elif !defined(NDEBUG)
  return true;
#else
  // Release at validate level 0: opt-in via the environment, latched once.
  static const bool enabled = [] {
    const char* env = std::getenv("XST_VERIFY_PROGRAMS");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }();
  return enabled;
#endif
}

}  // namespace xsp
}  // namespace xst
