#include "src/xsp/compile.h"

#include <limits>
#include <unordered_map>
#include <utility>

#include "src/common/macros.h"

namespace xst {
namespace xsp {

namespace {

constexpr size_t kMaxSlots = std::numeric_limits<uint16_t>::max();

// Leaf preview for disassembly, truncated like analyze.cc's NodeLabel so a
// giant literal cannot flood the listing.
std::string LiteralPreview(const XSet& value) {
  std::string text = value.ToString();
  constexpr size_t kMaxLeaf = 40;
  if (text.size() > kMaxLeaf) {
    text.resize(kMaxLeaf);
    text.append("...");
  }
  return text;
}

class Compiler {
 public:
  Result<Program> Run(const ExprPtr& expr) {
    XST_ASSIGN_OR_RAISE(uint16_t root, Lower(expr, /*is_root=*/true));
    program_.code.push_back({OpCode::kMaterialize, root, root, 0, 0});
    program_.num_regs = next_reg_;
    return std::move(program_);
  }

 private:
  Result<uint16_t> AllocReg() {
    if (next_reg_ == kMaxSlots) {
      return Status::CapacityError("plan needs more than 65534 registers");
    }
    return next_reg_++;
  }

  Result<uint16_t> AddSpec(Sigma sigma, Sigma omega) {
    if (program_.specs.size() >= kMaxSlots) {
      return Status::CapacityError("plan needs more than 65535 spec entries");
    }
    program_.specs.push_back({std::move(sigma), std::move(omega)});
    return static_cast<uint16_t>(program_.specs.size() - 1);
  }

  // Forces the register to hold an interned handle: kIndex / kRelProduct /
  // kClosure delegate to the set-level kernels, which take XSets. A no-op
  // at runtime when the register is already interned.
  void Materialize(uint16_t reg) {
    program_.code.push_back({OpCode::kMaterialize, reg, reg, 0, 0});
  }

  Result<uint16_t> Lower(const ExprPtr& e, bool is_root) {
    if (e == nullptr) return Status::Invalid("null expression");
    // Shared subtrees (pointer-shared, as optimizer rewrites produce)
    // compile once; re-use is free because registers are never clobbered
    // (kMaterialize replaces a value with its interned equal in place).
    auto memo = reg_of_.find(e.get());
    if (memo != reg_of_.end()) return memo->second;

    uint16_t dst = 0;
    switch (e->kind()) {
      case ExprKind::kLiteral: {
        if (program_.literals.size() >= kMaxSlots) {
          return Status::CapacityError("plan needs more than 65535 literals");
        }
        XST_ASSIGN_OR_RAISE(dst, AllocReg());
        program_.literals.push_back(e->literal());
        program_.code.push_back(
            {OpCode::kLoadLiteral, dst,
             static_cast<uint16_t>(program_.literals.size() - 1), 0, 0});
        break;
      }
      case ExprKind::kNamed: {
        if (program_.names.size() >= kMaxSlots) {
          return Status::CapacityError("plan needs more than 65535 names");
        }
        XST_ASSIGN_OR_RAISE(dst, AllocReg());
        program_.names.push_back(e->name());
        program_.code.push_back(
            {OpCode::kLoadBinding, dst,
             static_cast<uint16_t>(program_.names.size() - 1), 0, 0});
        break;
      }
      case ExprKind::kUnion:
      case ExprKind::kIntersect:
      case ExprKind::kDifference: {
        XST_ASSIGN_OR_RAISE(uint16_t a, Lower(e->child(0), false));
        XST_ASSIGN_OR_RAISE(uint16_t b, Lower(e->child(1), false));
        XST_ASSIGN_OR_RAISE(dst, AllocReg());
        OpCode op = e->kind() == ExprKind::kUnion        ? OpCode::kUnion
                    : e->kind() == ExprKind::kIntersect  ? OpCode::kIntersect
                                                         : OpCode::kDifference;
        program_.code.push_back({op, dst, a, b, 0});
        break;
      }
      case ExprKind::kDomain: {
        XST_ASSIGN_OR_RAISE(uint16_t a, Lower(e->child(0), false));
        XST_ASSIGN_OR_RAISE(uint16_t spec, AddSpec(e->sigma(), Sigma{XSet::Empty(), XSet::Empty()}));
        XST_ASSIGN_OR_RAISE(dst, AllocReg());
        program_.code.push_back({OpCode::kRescope, dst, a, 0, spec});
        break;
      }
      case ExprKind::kRestrict: {
        XST_ASSIGN_OR_RAISE(uint16_t a, Lower(e->child(0), false));
        XST_ASSIGN_OR_RAISE(uint16_t b, Lower(e->child(1), false));
        XST_ASSIGN_OR_RAISE(uint16_t spec, AddSpec(e->sigma(), Sigma{XSet::Empty(), XSet::Empty()}));
        XST_ASSIGN_OR_RAISE(dst, AllocReg());
        program_.code.push_back({OpCode::kRestrict, dst, a, b, spec});
        break;
      }
      case ExprKind::kImage: {
        XST_ASSIGN_OR_RAISE(uint16_t a, Lower(e->child(0), false));
        XST_ASSIGN_OR_RAISE(uint16_t b, Lower(e->child(1), false));
        XST_ASSIGN_OR_RAISE(uint16_t spec, AddSpec(e->sigma(), Sigma{XSet::Empty(), XSet::Empty()}));
        XST_ASSIGN_OR_RAISE(dst, AllocReg());
        // A root image over a stable leaf carrier goes through the cached
        // ImageIndex access path: its result is materialized anyway, and
        // repeated executions (the stored-relation regime index.h exists
        // for) amortize the build across the VmContext. Interior images
        // stay on the fused span loop, which never interns.
        const ExprKind carrier = e->child(0)->kind();
        if (is_root &&
            (carrier == ExprKind::kLiteral || carrier == ExprKind::kNamed)) {
          Materialize(a);
          Materialize(b);
          program_.code.push_back({OpCode::kIndex, dst, a, b, spec});
        } else {
          program_.code.push_back({OpCode::kImage, dst, a, b, spec});
        }
        break;
      }
      case ExprKind::kRelProduct: {
        XST_ASSIGN_OR_RAISE(uint16_t a, Lower(e->child(0), false));
        XST_ASSIGN_OR_RAISE(uint16_t b, Lower(e->child(1), false));
        XST_ASSIGN_OR_RAISE(uint16_t spec, AddSpec(e->sigma(), e->omega()));
        XST_ASSIGN_OR_RAISE(dst, AllocReg());
        Materialize(a);
        Materialize(b);
        program_.code.push_back({OpCode::kRelProduct, dst, a, b, spec});
        break;
      }
      case ExprKind::kClosure: {
        XST_ASSIGN_OR_RAISE(uint16_t a, Lower(e->child(0), false));
        XST_ASSIGN_OR_RAISE(dst, AllocReg());
        Materialize(a);
        program_.code.push_back({OpCode::kClosure, dst, a, 0, 0});
        break;
      }
      case ExprKind::kRange: {
        XST_ASSIGN_OR_RAISE(uint16_t spec,
                            AddSpec(e->sigma(), Sigma{XSet::Empty(), XSet::Empty()}));
        // Access-path selection: a range directly over a named leaf streams
        // through CursorSource::OpenElementRange (kLoadRange), so an
        // ordered-index source seeks the lower edge and reads only in-range
        // leaves — the set is never materialized here. Any other carrier is
        // computed first and sliced in the arena (kRange).
        if (e->child(0)->kind() == ExprKind::kNamed) {
          if (program_.names.size() >= kMaxSlots) {
            return Status::CapacityError("plan needs more than 65535 names");
          }
          XST_ASSIGN_OR_RAISE(dst, AllocReg());
          program_.names.push_back(e->child(0)->name());
          program_.code.push_back(
              {OpCode::kLoadRange, dst,
               static_cast<uint16_t>(program_.names.size() - 1), 0, spec});
        } else {
          XST_ASSIGN_OR_RAISE(uint16_t a, Lower(e->child(0), false));
          XST_ASSIGN_OR_RAISE(dst, AllocReg());
          program_.code.push_back({OpCode::kRange, dst, a, 0, spec});
        }
        break;
      }
    }
    reg_of_.emplace(e.get(), dst);
    return dst;
  }

  Program program_;
  uint16_t next_reg_ = 0;
  std::unordered_map<const Expr*, uint16_t> reg_of_;
};

}  // namespace

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kLoadLiteral:
      return "LoadLiteral";
    case OpCode::kLoadBinding:
      return "LoadBinding";
    case OpCode::kUnion:
      return "Union";
    case OpCode::kIntersect:
      return "Intersect";
    case OpCode::kDifference:
      return "Difference";
    case OpCode::kRescope:
      return "Rescope";
    case OpCode::kRestrict:
      return "Restrict";
    case OpCode::kImage:
      return "Image";
    case OpCode::kIndex:
      return "Index";
    case OpCode::kRelProduct:
      return "RelProduct";
    case OpCode::kClosure:
      return "Closure";
    case OpCode::kMaterialize:
      return "Materialize";
    case OpCode::kRange:
      return "Range";
    case OpCode::kLoadRange:
      return "LoadRange";
  }
  return "?";
}

std::string Program::ToString() const {
  std::string out;
  for (size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& in = code[pc];
    out.append(std::to_string(pc)).append(": ").append(OpCodeName(in.op));
    switch (in.op) {
      case OpCode::kLoadLiteral:
        out.append(" r").append(std::to_string(in.dst));
        out.append(" <- ").append(LiteralPreview(literals[in.a]));
        break;
      case OpCode::kLoadBinding:
        out.append(" r").append(std::to_string(in.dst));
        out.append(" <- @").append(names[in.a]);
        break;
      case OpCode::kUnion:
      case OpCode::kIntersect:
      case OpCode::kDifference:
        out.append(" r").append(std::to_string(in.dst));
        out.append(" <- r").append(std::to_string(in.a));
        out.append(", r").append(std::to_string(in.b));
        break;
      case OpCode::kRescope:
      case OpCode::kRange:
        out.append(" r").append(std::to_string(in.dst));
        out.append(" <- r").append(std::to_string(in.a));
        out.append(" sigma#").append(std::to_string(in.spec));
        break;
      case OpCode::kLoadRange:
        out.append(" r").append(std::to_string(in.dst));
        out.append(" <- @").append(names[in.a]);
        out.append(" sigma#").append(std::to_string(in.spec));
        break;
      case OpCode::kRestrict:
      case OpCode::kImage:
      case OpCode::kIndex:
        out.append(" r").append(std::to_string(in.dst));
        out.append(" <- r").append(std::to_string(in.a));
        out.append("[r").append(std::to_string(in.b));
        out.append("] sigma#").append(std::to_string(in.spec));
        break;
      case OpCode::kRelProduct:
        out.append(" r").append(std::to_string(in.dst));
        out.append(" <- r").append(std::to_string(in.a));
        out.append(" /so# r").append(std::to_string(in.b));
        out.append(" spec#").append(std::to_string(in.spec));
        break;
      case OpCode::kClosure:
        out.append(" r").append(std::to_string(in.dst));
        out.append(" <- r").append(std::to_string(in.a)).append("+");
        break;
      case OpCode::kMaterialize:
        out.append(" r").append(std::to_string(in.dst));
        break;
    }
    out.push_back('\n');
  }
  return out;
}

Result<Program> Compile(const ExprPtr& expr) {
  Compiler compiler;
  return compiler.Run(expr);
}

}  // namespace xsp
}  // namespace xst
