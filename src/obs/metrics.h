// Process-wide observability: named lock-free counters, gauges, and
// log-scale latency histograms behind a single registry.
//
// Design (deliberately boring, in the RocksDB Statistics tradition):
//   * Metrics are named once and live forever. MetricsRegistry::Global()
//     hands out stable references; hot paths resolve a metric a single time
//     into a function-local static and then pay exactly one relaxed atomic
//     RMW per event — cheap enough to stay on in release builds.
//   * Histograms bucket by powers of two (bucket k covers [2^{k-1}, 2^k)),
//     so a latency record is a bit-scan plus three relaxed adds, and
//     percentile extraction returns the upper bound of the covering bucket:
//     the reported pXX always brackets the true value within a factor of 2.
//   * Everything is readable while being written: snapshots are approximate
//     under concurrency, exact once writers quiesce (the property the
//     registry tests pin down).
//
// The registry is the one place the five historical stats structs
// (EvalStats, OptimizerStats, RescopeCacheStats, PagerStats, InternerStats)
// meet: their accessor APIs survive, but the counters behind them live (or
// are mirrored) here, so `DumpMetricsJson()` is a whole-system answer to
// "what did this process do" — see DESIGN.md §9.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xst {
namespace obs {

/// \brief A monotonically increasing (resettable) event counter.
///
/// All operations are relaxed atomics: counts from concurrent writers sum
/// exactly; cross-metric ordering is not promised.
class alignas(64) Counter {
 public:
  /// \brief Adds `n` to the counter.
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }

  /// \brief Adds 1 to the counter.
  void Increment() { Add(1); }

  /// \brief Current value (exact once concurrent writers quiesce).
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// \brief Resets to zero (per-query / per-phase attribution).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief A point-in-time signed level (pool occupancy, resident entries).
class alignas(64) Gauge {
 public:
  /// \brief Sets the gauge to `v`.
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }

  /// \brief Adjusts the gauge by `delta` (may be negative).
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }

  /// \brief Current level.
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// \brief Resets to zero.
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief A lock-free log-scale histogram of non-negative samples
/// (nanosecond latencies by convention).
///
/// Bucket 0 holds the value 0; bucket k ≥ 1 holds [2^{k-1}, 2^k). Recording
/// is wait-free; percentile extraction walks 64 buckets.
class alignas(64) Histogram {
 public:
  /// \brief Number of power-of-two buckets.
  static constexpr int kBuckets = 64;

  /// \brief Records one sample. Two relaxed RMWs — recording is the hot
  /// path (every span close lands here), so the total count is derived on
  /// read instead of maintained as a third atomic.
  void Record(uint64_t v) {
    buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// \brief Records one sample with weight `w` (as if `v` were recorded `w`
  /// times) — the span sampler's unbiasing hook.
  void RecordWeighted(uint64_t v, uint64_t w) {
    buckets_[BucketFor(v)].fetch_add(w, std::memory_order_relaxed);
    sum_.fetch_add(v * w, std::memory_order_relaxed);
  }

  /// \brief Total samples recorded (sums the buckets; reads are rare).
  uint64_t count() const {
    uint64_t total = 0;
    for (const std::atomic<uint64_t>& b : buckets_) {
      total += b.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// \brief Sum of all samples.
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// \brief The upper bound of the bucket containing the `p`-th percentile
  /// (p in [0, 100]); 0 when empty. For any recorded v > 0 the result is in
  /// [v, 2v): log-scale percentiles bracket the true value within 2×.
  uint64_t Percentile(double p) const;

  /// \brief Samples in bucket `k` (tests, renderers).
  uint64_t bucket(int k) const { return buckets_[k].load(std::memory_order_relaxed); }

  /// \brief Resets every bucket and the count/sum to zero.
  void Reset();

 private:
  static int BucketFor(uint64_t v) {
    int b = 64 - __builtin_clzll(v | 1);  // bit_width(v), with v=0 → 1
    if (v == 0) return 0;
    return b >= kBuckets ? kBuckets - 1 : b;
  }

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// \brief A point-in-time copy of every registered metric.
struct MetricsSnapshot {
  /// \brief One histogram row with extracted percentiles.
  struct HistogramRow {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };

  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramRow> histograms;
};

/// \brief The process-wide named-metric registry.
///
/// Lookup is a mutex-guarded map probe and is meant to run once per call
/// site (cache the returned reference in a function-local static); the
/// metric objects themselves are immortal, so references never dangle.
class MetricsRegistry {
 public:
  /// \brief The process-wide registry (leaked singleton, like the interner).
  static MetricsRegistry& Global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief The counter named `name`, created on first use.
  Counter& GetCounter(std::string_view name);

  /// \brief The gauge named `name`, created on first use.
  Gauge& GetGauge(std::string_view name);

  /// \brief The histogram named `name`, created on first use.
  Histogram& GetHistogram(std::string_view name);

  /// \brief Copies out every metric, sorted by name. Approximate while
  /// writers are concurrent, exact once they quiesce.
  MetricsSnapshot Snapshot() const;

  /// \brief Zeroes every registered metric (names and objects survive, so
  /// cached references stay valid) — per-phase attribution and tests.
  void ResetAll();

 private:
  MetricsRegistry();
  ~MetricsRegistry() = delete;  // immortal

  struct Impl;
  Impl* impl_;
};

/// \brief Renders the whole registry as a JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// p50, p95, p99}}}. The shape `tools/run_benches.py` merges into reports.
std::string DumpMetricsJson();

}  // namespace obs
}  // namespace xst
