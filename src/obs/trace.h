// RAII trace spans: wall-time attribution for kernels and I/O paths.
//
//   XSet Union(const XSet& a, const XSet& b) {
//     XST_TRACE_SPAN("op.union");
//     ...
//   }
//
// Spans record their wall time into the registry histogram "span.<name>"
// (so p50/p95/p99 per operation are free in production), and — only when a
// thread-local TraceSink is installed via ScopedTraceSink — additionally
// append a parent-linked record to the sink, from which the caller
// reconstructs the span tree of one traced region.
//
// Cost model: with no sink installed, spans are sampled 1-in-8 per thread
// and recorded with weight 8 (count and sum stay unbiased; the period is
// exact, so any 8 consecutive spans sample exactly once). A sampled span is
// two raw TSC reads (scaled to ns with a once-calibrated factor) plus one
// two-RMW histogram record; a skipped span is a thread-local decrement and
// a branch. Amortized cost is < 50ns/span — measured in bench/bench_obs.cc
// and documented in DESIGN.md §9. With a sink installed every span records
// (weight 1), so traced trees are complete. This is cheap relative to
// whole-set kernels, which is why spans live on whole-set operators while
// per-membership primitives (re-scoping, subset tests, interning) carry
// counters only — a span there would dominate the work it measures.
//
// Threading: the sink is thread-local. Spans opened on pool workers inside
// a traced region record histograms but do not appear in the caller's sink
// (workers have no sink installed); the caller-thread chunks of a
// ParallelFor do. Sinks must stay on the thread that installed them.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace xst {
namespace obs {

/// \brief Sentinel parent index for root spans.
inline constexpr uint32_t kNoParent = ~uint32_t{0};

/// \brief One finished (or still-open, duration 0) span in a sink.
struct SpanRecord {
  const char* name = nullptr;  ///< static string from XST_TRACE_SPAN
  uint64_t start_ns = 0;       ///< monotonic clock at entry
  uint64_t duration_ns = 0;    ///< wall time; 0 while the span is open
  uint32_t parent = kNoParent; ///< index of the enclosing span, or kNoParent
};

/// \brief Monotonic wall clock in nanoseconds (steady_clock).
uint64_t MonotonicNowNs();

/// \brief Installs a span sink on the current thread for its lifetime;
/// restores any previously installed sink on destruction.
class ScopedTraceSink {
 public:
  /// \brief Installs this sink as the current thread's span collector.
  ScopedTraceSink();

  /// \brief Uninstalls the sink (restoring the previous one, if any).
  ~ScopedTraceSink();

  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

  /// \brief The records collected so far, in open order.
  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// \brief Moves the collected records out (the sink keeps collecting).
  std::vector<SpanRecord> TakeSpans();

 private:
  friend class TraceSpan;
  std::vector<SpanRecord> spans_;
  ScopedTraceSink* prev_ = nullptr;
  uint32_t prev_open_ = kNoParent;
};

/// \brief The RAII span object XST_TRACE_SPAN expands to. Construct via the
/// macro; direct use is for tests.
class TraceSpan {
 public:
  /// \brief Opens a span named `name`, recording into `hist` on close.
  TraceSpan(const char* name, Histogram* hist);

  /// \brief Closes the span: records wall time into the histogram and
  /// finalizes the sink record, if a sink was active at open.
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Histogram* hist_;             // null when this span was sampled out
  uint64_t start_ticks_ = 0;    // raw TSC/counter ticks, not nanoseconds
  uint32_t index_ = kNoParent;  // record index in the sink, if one was active
  uint32_t weight_ = 1;         // histogram weight (sampling period, or 1)
};

/// \brief Renders a sink's records as an indented tree with durations —
/// one line per span, children indented under parents.
std::string RenderSpanTree(const std::vector<SpanRecord>& spans);

}  // namespace obs
}  // namespace xst

// Opens a span for the rest of the enclosing scope. `name` must be a string
// literal; the backing histogram ("span." name) is resolved once per call
// site into a function-local static.
#define XST_TRACE_SPAN_IMPL2(name, id)                                  \
  static ::xst::obs::Histogram& xst_span_hist_##id =                    \
      ::xst::obs::MetricsRegistry::Global().GetHistogram("span." name); \
  ::xst::obs::TraceSpan xst_span_##id((name), &xst_span_hist_##id)
#define XST_TRACE_SPAN_IMPL(name, id) XST_TRACE_SPAN_IMPL2(name, id)
#define XST_TRACE_SPAN(name) XST_TRACE_SPAN_IMPL(name, __COUNTER__)
