#include "src/obs/trace.h"

#include <chrono>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace xst {
namespace obs {

namespace {

// The installed sink and the index of the innermost open span within it.
// Both are saved/restored by ScopedTraceSink so traced regions nest.
thread_local ScopedTraceSink* tls_sink = nullptr;
thread_local uint32_t tls_open = kNoParent;

// No-sink spans are sampled 1-in-kSampleEvery per thread and recorded with
// weight kSampleEvery, keeping histogram count/sum unbiased while skipped
// spans cost only a TLS decrement and a branch. The period is exact, so any
// kSampleEvery consecutive spans on a thread sample exactly once. Starts at
// 1: the first span on each thread samples.
constexpr uint32_t kSampleEvery = 8;
thread_local uint32_t tls_sample_countdown = 1;

// Raw cycle/tick counter for span durations. clock_gettime costs ~20-30ns
// per read even through the vDSO — two of those alone would blow the span
// budget — while rdtsc / cntvct_el0 are a few ns. Spans only ever subtract
// two ticks from the same thread, so TSC offset between sockets is not a
// concern, and modern invariant TSCs tick at a constant rate.
inline uint64_t FastTicks() {
#if defined(__x86_64__)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return MonotonicNowNs();  // ticks are already nanoseconds
#endif
}

// Tick-to-nanosecond scale, calibrated once against the monotonic clock
// over a ~100us window on first use (first span close pays it).
double NsPerTick() {
  static const double scale = [] {
    const uint64_t t0 = FastTicks();
    const uint64_t ns0 = MonotonicNowNs();
    uint64_t ns1 = ns0;
    while (ns1 - ns0 < 100'000) ns1 = MonotonicNowNs();
    const uint64_t t1 = FastTicks();
    if (t1 == t0) return 1.0;  // non-advancing fallback source
    return static_cast<double>(ns1 - ns0) / static_cast<double>(t1 - t0);
  }();
  return scale;
}

inline uint64_t TicksToNs(uint64_t ticks) {
  return static_cast<uint64_t>(static_cast<double>(ticks) * NsPerTick());
}

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedTraceSink::ScopedTraceSink() : prev_(tls_sink), prev_open_(tls_open) {
  tls_sink = this;
  tls_open = kNoParent;
}

ScopedTraceSink::~ScopedTraceSink() {
  tls_sink = prev_;
  tls_open = prev_open_;
}

std::vector<SpanRecord> ScopedTraceSink::TakeSpans() {
  std::vector<SpanRecord> out = std::move(spans_);
  spans_.clear();
  // Spans still open refer to indices in the moved-out vector; callers take
  // only after the traced region closed, so the open chain is empty here.
  tls_open = kNoParent;
  return out;
}

TraceSpan::TraceSpan(const char* name, Histogram* hist) : hist_(hist) {
  if (tls_sink != nullptr) {
    // Traced region: record every span exactly (weight 1) so the caller's
    // span tree is complete.
    index_ = static_cast<uint32_t>(tls_sink->spans_.size());
    SpanRecord rec;
    rec.name = name;
    rec.parent = tls_open;
    rec.start_ns = MonotonicNowNs();  // sink path can afford the real clock
    tls_sink->spans_.push_back(rec);
    tls_open = index_;
    weight_ = 1;
  } else {
    if (--tls_sample_countdown != 0) {
      hist_ = nullptr;  // skipped sample: the destructor does nothing
      return;
    }
    tls_sample_countdown = kSampleEvery;
    weight_ = kSampleEvery;
  }
  start_ticks_ = FastTicks();  // last: exclude bookkeeping from the span
}

TraceSpan::~TraceSpan() {
  if (hist_ == nullptr) return;
  const uint64_t dur = TicksToNs(FastTicks() - start_ticks_);
  hist_->RecordWeighted(dur, weight_);
  if (index_ != kNoParent && tls_sink != nullptr) {
    SpanRecord& rec = tls_sink->spans_[index_];
    rec.duration_ns = dur;
    tls_open = rec.parent;
  }
}

std::string RenderSpanTree(const std::vector<SpanRecord>& spans) {
  // Children of span i are the records j > i with parent == i; records are
  // in open order, so a single pass with per-node depth renders the tree.
  std::vector<int> depth(spans.size(), 0);
  std::string out;
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& rec = spans[i];
    if (rec.parent != kNoParent && rec.parent < i) {
      depth[i] = depth[rec.parent] + 1;
    }
    out.append(static_cast<size_t>(depth[i]) * 2, ' ');
    out.append(rec.name != nullptr ? rec.name : "<unnamed>");
    out.append("  ").append(std::to_string(rec.duration_ns)).append("ns\n");
  }
  return out;
}

}  // namespace obs
}  // namespace xst
