#include "src/obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "src/common/sync.h"

namespace xst {
namespace obs {

uint64_t Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the percentile sample, 1-based: ceil(p/100 * n), at least 1.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank * 100 < static_cast<uint64_t>(p * static_cast<double>(n))) ++rank;
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (int k = 0; k < kBuckets; ++k) {
    cumulative += bucket(k);
    if (cumulative >= rank) {
      if (k == 0) return 0;
      // Upper bound of [2^{k-1}, 2^k): one below the next power of two.
      return k >= 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;
    }
  }
  return ~uint64_t{0};  // unreachable when count() > 0
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// Metric objects are held behind unique_ptr so the map can grow without
// moving them; the registry itself is leaked, so references are immortal.
struct MetricsRegistry::Impl {
  mutable Mutex registry_mu XST_LOCK_RANK(90);
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters XST_GUARDED_BY(registry_mu);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges XST_GUARDED_BY(registry_mu);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms XST_GUARDED_BY(registry_mu);
};

// The only instance is the leaked Global() singleton, so its Impl is
// immortal too — same lifetime story as the interner arena.
MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {}  // xst-lint: allow(raw-new-delete)

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked with the arena
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&impl_->registry_mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    it = impl_->counters.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&impl_->registry_mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    it = impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(&impl_->registry_mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    it = impl_->histograms.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&impl_->registry_mu);
  snap.counters.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.count = h->count();
    row.sum = h->sum();
    row.p50 = h->Percentile(50);
    row.p95 = h->Percentile(95);
    row.p99 = h->Percentile(99);
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&impl_->registry_mu);
  for (auto& [name, c] : impl_->counters) c->Reset();
  for (auto& [name, g] : impl_->gauges) g->Reset();
  for (auto& [name, h] : impl_->histograms) h->Reset();
}

namespace {

// Metric names are code-controlled (dots and identifiers), but escape
// defensively so the dump is always valid JSON.
void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string DumpMetricsJson() {
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(name, &out);
    out.append(": ").append(std::to_string(v));
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"gauges\": {");
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(name, &out);
    out.append(": ").append(std::to_string(v));
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"histograms\": {");
  first = true;
  for (const auto& row : snap.histograms) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(row.name, &out);
    out.append(": {\"count\": ").append(std::to_string(row.count));
    out.append(", \"sum_ns\": ").append(std::to_string(row.sum));
    out.append(", \"p50_ns\": ").append(std::to_string(row.p50));
    out.append(", \"p95_ns\": ").append(std::to_string(row.p95));
    out.append(", \"p99_ns\": ").append(std::to_string(row.p99));
    out.append("}");
  }
  out.append(first ? "}\n}\n" : "\n  }\n}\n");
  return out;
}

namespace {

// XST_METRICS_OUT=<path> dumps the registry as JSON at process exit — how
// benchmark binaries hand their cache/pool counters to run_benches.py
// without touching google-benchmark's main().
void DumpMetricsAtExit() {
  static const char* path = std::getenv("XST_METRICS_OUT");
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  std::string json = DumpMetricsJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

struct MetricsDumpInstaller {
  MetricsDumpInstaller() {
    if (std::getenv("XST_METRICS_OUT") != nullptr) std::atexit(&DumpMetricsAtExit);
  }
} metrics_dump_installer;

}  // namespace

}  // namespace obs
}  // namespace xst
