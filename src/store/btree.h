// Page-native B+tree ordered index over the pager (ROADMAP item 1).
//
// The paper's operations are defined over *ordered* canonical member lists,
// so the natural on-disk index for a stored set is a B+tree keyed by the
// structural order from core/order: every leaf entry is one encoded
// membership, leaves are chained left-to-right, and an in-order walk of the
// leaf level IS the set's canonical member list. Range σ-restriction by
// element interval and member point-lookup then touch O(height + leaves in
// range) pages instead of decoding the whole blob.
//
// Layout (one node per 8 KiB slotted page):
//   record 0          node header: kind byte (0x00 leaf / 0x01 internal);
//                     leaves append varint(next_leaf_page + 1), 0 = none
//   records 1..n      entries, in strictly ascending key order
//     leaf entry      encoded membership: EncodeXSet(element) ‖
//                     EncodeXSet(scope), or an overflow reference
//     internal entry  varint(child_page) ‖ key payload, where the key is the
//                     exact minimum membership of the child's subtree (full
//                     keys, not separators — parent/child consistency is
//                     byte-comparable and Validate can check equality)
//   overflow          entries longer than kMaxInlineEntry store
//                     0xFE ‖ varint(first_page, page_span, byte_length) and
//                     spill the payload across a contiguous page span (one
//                     record per page, like SetStore blobs). Chains are
//                     immutable once written; stale ones are garbage until
//                     Compact rewrites the store.
//
// Mutations rewrite whole nodes (slotted pages have no in-place update), so
// a crash mid-mutation leaves either a consistent pre-/post-state or a tree
// that ValidateBTree/checksums detect as Corruption — the same contract the
// blob store proves under fault injection. Fill is tracked in BYTES, not
// entry counts, because entries vary from a few bytes to kMaxInlineEntry:
// non-root nodes keep at least kMinNodeFill bytes of entries, splits cut at
// the byte midpoint, and underflow is repaired by borrow (when the sibling
// is byte-rich) or merge (when both halves fit one page).
//
// Not thread-safe; like the Pager it is only reachable through SetStore's
// mutex-guarded members. All page access goes through pinned PageRefs.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/xset.h"
#include "src/store/pager.h"

namespace xst {

/// \brief Entries whose encoded payload exceeds this many bytes spill to an
/// overflow page span. Chosen so a non-root node always holds several
/// entries (kMinNodeFill covers at least one maximal inline entry).
inline constexpr size_t kMaxInlineEntry = 1024;

/// \brief Upper bound on tree height accepted anywhere (descents, catalog
/// entries): a deeper tree than this is structurally impossible for any
/// page count and signals corruption or a cycle.
inline constexpr uint32_t kMaxBTreeHeight = 64;

/// \brief Identity of one tree: root page, level count, cardinality.
/// Persisted in the catalog (first_page=root, page_span=height,
/// byte_length=member_count for index-kind entries).
struct BTreeInfo {
  uint32_t root = kInvalidPageId;
  uint32_t height = 0;  // levels; 1 = a single leaf
  uint64_t member_count = 0;
};

/// \brief A streaming position: the current leaf page and the next record
/// index to read within it (record 0 is the node header, so entry i lives
/// at record i+1). leaf == kInvalidPageId means exhausted.
struct BTreeCursorPos {
  uint32_t leaf = kInvalidPageId;
  uint32_t slot = 1;
};

/// \brief Handle over one stored tree. Mutations update the handle's info()
/// (root/height/member_count); the caller persists it to the catalog.
class BTree {
 public:
  BTree(Pager* pager, const BTreeInfo& info) : pager_(pager), info_(info) {}

  /// \brief Bulk-loads a tree from a canonical (strictly ascending) member
  /// list, packing leaves left-to-right. An empty list builds a single
  /// empty leaf, so the root is always a live page.
  static Result<BTreeInfo> Build(Pager& pager, std::span<const Membership> members);

  const BTreeInfo& info() const { return info_; }

  /// \brief Inserts a membership; false if it was already present (the tree
  /// is unchanged). Splits propagate upward and may grow a new root.
  Result<bool> Insert(const Membership& m);

  /// \brief Removes a membership; false if absent. Underflow is repaired by
  /// borrow/merge; a single-child internal root collapses.
  Result<bool> Erase(const Membership& m);

  /// \brief Point lookup along one root-to-leaf path.
  Result<bool> Contains(const Membership& m) const;

  /// \brief Position at the first entry of the leftmost leaf.
  Result<BTreeCursorPos> SeekFirst() const;

  /// \brief Position at the first entry whose ELEMENT is ≥ lo under the
  /// structural order — the lower edge of a range σ-restriction.
  Result<BTreeCursorPos> SeekElement(const XSet& lo) const;

  /// \brief Appends the rest of pos's leaf to `out` and advances pos to the
  /// next leaf. When `hi_element` is non-null, stops (and exhausts the
  /// cursor) at the first entry whose element exceeds it. Returns false
  /// when the cursor was already exhausted.
  Result<bool> ReadLeafBatch(BTreeCursorPos* pos, const XSet* hi_element,
                             std::vector<Membership>* out) const;

  /// \brief Full structural check: key ordering within and across nodes,
  /// parent key == exact child-subtree minimum, uniform leaf depth, byte
  /// fill floors, leaf chaining, page-id cycles, and cardinality against
  /// info().member_count. Returns Corruption with a diagnostic on the first
  /// violated invariant.
  Status Validate() const;

 private:
  Pager* pager_;
  BTreeInfo info_;
};

/// \brief Free-function form of BTree::Validate for callers that only hold
/// the catalog identity. Wired into the XST_VALIDATE tiers by SetStore:
/// level ≥ 1 validates after every tree mutation, level ≥ 2 additionally
/// re-validates on open and on every cursor seek.
Status ValidateBTree(Pager& pager, const BTreeInfo& info);

}  // namespace xst
