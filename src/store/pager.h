// Pager: a file of pages behind an LRU buffer pool with pin discipline.
//
// The 1977 paper's backend context (block devices, scarce memory) is
// simulated with a page file plus a bounded write-back cache. The pager
// tracks hit/miss/eviction counters so the benchmarks can report locality
// behavior, and validates checksums on every fill — a torn or tampered page
// surfaces as Corruption, never as silent bad data. The checksum is seeded
// with the page id, so a misdirected write (right bytes, wrong offset) is
// also Corruption.
//
// Access is exclusively through PageRef, an RAII pin handle: a pinned frame
// is never evicted, so the reference stays valid for the handle's entire
// lifetime — across further fetches and allocations. The historical
// use-after-evict (holding a raw Page* across a pager call that recycled
// the frame) is unrepresentable in this API. When every frame is pinned and
// a fetch needs a new one, the pager returns ResourceExhausted instead of
// invalidating anything.
//
// I/O goes through the File seam (file.h); tests interpose FaultFile to
// prove every read/write/flush failure surfaces as a Status.
//
// With a Wal attached (AttachWal; see wal.h and DESIGN.md §14) the pager
// NEVER writes the main file on its own: evicting a dirty frame spills its
// image into the log instead of the file, fetches read through the log's
// image table before touching the file, and the main file is written only
// by ApplyCheckpointImage — the no-steal ordering that keeps uncommitted
// (and committed-but-unsynced) pages from ever overtaking the log.
//
// Not thread-safe by itself: the pager is only reachable through
// SetStore::pager_, which is XST_GUARDED_BY the store's mutex — the 1977
// single-writer discipline, enforced at compile time by Clang's thread-safety
// analysis rather than by convention (see setstore.h).

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/common/result.h"
#include "src/store/file.h"
#include "src/store/page.h"

namespace xst {

class Wal;

struct PagerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t allocations = 0;
};

namespace internal {

// Registry names of the process-wide pager counters. Per-instance stats
// (Pager::stats) stay exact per pager; these aggregate across every pager in
// the process, which is what ExplainAnalyze's pages-touched attribution and
// the benchmark metrics dump read.
inline constexpr const char* kPagerHitsCounter = "pager.fetch.hits";
inline constexpr const char* kPagerMissesCounter = "pager.fetch.misses";
inline constexpr const char* kPagerEvictionsCounter = "pager.evictions";
inline constexpr const char* kPagerWritebacksCounter = "pager.writebacks";
inline constexpr const char* kPagerAllocationsCounter = "pager.allocations";

/// \brief A buffer-pool frame. Lives in the pager's LRU list (std::list
/// nodes are address-stable), addressed by PageRef while pinned.
struct PageFrame {
  Page page;
  uint32_t page_id = kInvalidPageId;
  uint32_t pins = 0;
  bool dirty = false;
  // WAL mode: the current dirty content has been captured as a log record.
  // MarkDirty clears it, so "dirty && !logged" is exactly the set of frames
  // DrainUnloggedToWal must capture before a commit record seals the txn.
  bool logged = false;
};

}  // namespace internal

class Pager;

/// \brief RAII pin on a buffer-pool frame.
///
/// Holding a PageRef guarantees the frame is resident and address-stable;
/// releasing (destruction, move-assignment, Reset) unpins it. Move-only.
/// A PageRef must not outlive its Pager (checked at pager teardown).
///
/// [[nodiscard]]: a discarded PageRef unpins immediately, so the page the
/// caller thought it pinned is evictable right away — exactly the
/// use-after-evict window the pin API exists to close.
class [[nodiscard]] PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Reset(); }

  /// \brief True iff the handle pins a frame.
  explicit operator bool() const { return frame_ != nullptr; }

  Page* operator->() const { return &frame_->page; }
  Page& operator*() const { return frame_->page; }

  /// \brief The pinned page's id.
  uint32_t id() const { return frame_->page_id; }

  /// \brief Marks the pinned page dirty so eviction/flush persists it.
  /// Any previously logged image is stale for the new content.
  void MarkDirty() {
    frame_->dirty = true;
    frame_->logged = false;
  }

  /// \brief Unpins early (the handle becomes empty).
  void Reset();

 private:
  friend class Pager;
  PageRef(Pager* pager, internal::PageFrame* frame);

  Pager* pager_ = nullptr;
  internal::PageFrame* frame_ = nullptr;
};

class Pager {
 public:
  /// \brief Opens (creating if needed) a page file through StdioFile.
  /// `capacity` is the buffer-pool size in pages (≥ 1).
  static Result<std::unique_ptr<Pager>> Open(const std::string& path, size_t capacity = 64);

  /// \brief Opens over a caller-supplied File (fault injection, alternate
  /// backends). `name` labels error messages.
  static Result<std::unique_ptr<Pager>> Open(std::unique_ptr<File> file,
                                             size_t capacity, const std::string& name);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// \brief Appends a fresh empty page and returns it pinned and dirty.
  /// ResourceExhausted if every frame is pinned.
  Result<PageRef> AllocatePage();

  /// \brief Reads a page through the pool, pinned. ResourceExhausted if the
  /// page is not resident and every frame is pinned.
  Result<PageRef> FetchPage(uint32_t page_id);

  /// \brief Writes back every dirty page and flushes the file. Unreachable
  /// in WAL mode (durability is the log's job; see AttachWal).
  Status Flush();

  /// \brief Puts the pager in WAL mode: dirty evictions spill to the log,
  /// fetches read through the log's image table, teardown skips its flush,
  /// and the logical page count covers pages that exist only as log images
  /// (the main file lags the log until the next checkpoint). The Wal must
  /// outlive the pager.
  void AttachWal(Wal* wal);

  /// \brief Logs every dirty-and-unlogged frame's image (the pages the
  /// current transaction mutated that pool pressure has not already
  /// spilled). Called immediately before the commit record is appended.
  Status DrainUnloggedToWal();

  /// \brief True iff some frame is dirty with no logged image — i.e. the
  /// current transaction has touched pages that only a commit (or abort +
  /// pager reload) can resolve. Lets logically-no-op mutations that still
  /// dirtied pages (e.g. a duplicate insert that allocated overflow pages
  /// before detection) decide between a cheap abort and a real commit.
  bool HasUnloggedDirty() const;

  /// \brief Checkpoint writer: puts `bytes` (a full page image) at the
  /// page's offset in the main file and marks a matching resident frame
  /// clean. The only main-file write path in WAL mode.
  Status ApplyCheckpointImage(uint32_t page_id, const std::string& bytes);

  /// \brief Fsyncs the main file (checkpoint's final barrier).
  Status SyncFile();

  /// \brief Number of pages in the file.
  uint32_t page_count() const { return page_count_; }

  /// \brief Currently pinned frames (for tests and invariant checks).
  size_t pinned_frames() const { return pinned_frames_; }

  const PagerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PagerStats{}; }

 private:
  friend class PageRef;

  Pager(std::unique_ptr<File> file, std::string name, size_t capacity,
        uint32_t page_count)
      : file_(std::move(file)),
        name_(std::move(name)),
        capacity_(capacity),
        page_count_(page_count) {}

  Status WriteBack(internal::PageFrame& frame);
  Status EvictIfFull();
  void Unpin(internal::PageFrame* frame);

  std::unique_ptr<File> file_;
  std::string name_;
  size_t capacity_;
  Wal* wal_ = nullptr;  // unowned; null = legacy direct-write mode
  uint32_t page_count_;
  size_t pinned_frames_ = 0;
  PagerStats stats_;
  // LRU: most-recent at front. The map stores list iterators for O(1) touch.
  std::list<internal::PageFrame> lru_;
  std::unordered_map<uint32_t, std::list<internal::PageFrame>::iterator> frames_;
};

}  // namespace xst
