// Pager: a file of pages behind an LRU buffer pool with pin discipline.
//
// The 1977 paper's backend context (block devices, scarce memory) is
// simulated with a page file plus a bounded write-back cache. The pager
// tracks hit/miss/eviction counters so the benchmarks can report locality
// behavior, and validates checksums on every fill — a torn or tampered page
// surfaces as Corruption, never as silent bad data. The checksum is seeded
// with the page id, so a misdirected write (right bytes, wrong offset) is
// also Corruption.
//
// Access is exclusively through PageRef, an RAII pin handle: a pinned frame
// is never evicted, so the reference stays valid for the handle's entire
// lifetime — across further fetches and allocations. The historical
// use-after-evict (holding a raw Page* across a pager call that recycled
// the frame) is unrepresentable in this API. When every frame is pinned and
// a fetch needs a new one, the pager returns ResourceExhausted instead of
// invalidating anything.
//
// I/O goes through the File seam (file.h); tests interpose FaultFile to
// prove every read/write/flush failure surfaces as a Status.
//
// Not thread-safe by itself: the pager is only reachable through
// SetStore::pager_, which is XST_GUARDED_BY the store's mutex — the 1977
// single-writer discipline, enforced at compile time by Clang's thread-safety
// analysis rather than by convention (see setstore.h).

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/common/result.h"
#include "src/store/file.h"
#include "src/store/page.h"

namespace xst {

struct PagerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t allocations = 0;
};

namespace internal {

// Registry names of the process-wide pager counters. Per-instance stats
// (Pager::stats) stay exact per pager; these aggregate across every pager in
// the process, which is what ExplainAnalyze's pages-touched attribution and
// the benchmark metrics dump read.
inline constexpr const char* kPagerHitsCounter = "pager.fetch.hits";
inline constexpr const char* kPagerMissesCounter = "pager.fetch.misses";
inline constexpr const char* kPagerEvictionsCounter = "pager.evictions";
inline constexpr const char* kPagerWritebacksCounter = "pager.writebacks";
inline constexpr const char* kPagerAllocationsCounter = "pager.allocations";

/// \brief A buffer-pool frame. Lives in the pager's LRU list (std::list
/// nodes are address-stable), addressed by PageRef while pinned.
struct PageFrame {
  Page page;
  uint32_t page_id = kInvalidPageId;
  uint32_t pins = 0;
  bool dirty = false;
};

}  // namespace internal

class Pager;

/// \brief RAII pin on a buffer-pool frame.
///
/// Holding a PageRef guarantees the frame is resident and address-stable;
/// releasing (destruction, move-assignment, Reset) unpins it. Move-only.
/// A PageRef must not outlive its Pager (checked at pager teardown).
///
/// [[nodiscard]]: a discarded PageRef unpins immediately, so the page the
/// caller thought it pinned is evictable right away — exactly the
/// use-after-evict window the pin API exists to close.
class [[nodiscard]] PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Reset(); }

  /// \brief True iff the handle pins a frame.
  explicit operator bool() const { return frame_ != nullptr; }

  Page* operator->() const { return &frame_->page; }
  Page& operator*() const { return frame_->page; }

  /// \brief The pinned page's id.
  uint32_t id() const { return frame_->page_id; }

  /// \brief Marks the pinned page dirty so eviction/flush persists it.
  void MarkDirty() { frame_->dirty = true; }

  /// \brief Unpins early (the handle becomes empty).
  void Reset();

 private:
  friend class Pager;
  PageRef(Pager* pager, internal::PageFrame* frame);

  Pager* pager_ = nullptr;
  internal::PageFrame* frame_ = nullptr;
};

class Pager {
 public:
  /// \brief Opens (creating if needed) a page file through StdioFile.
  /// `capacity` is the buffer-pool size in pages (≥ 1).
  static Result<std::unique_ptr<Pager>> Open(const std::string& path, size_t capacity = 64);

  /// \brief Opens over a caller-supplied File (fault injection, alternate
  /// backends). `name` labels error messages.
  static Result<std::unique_ptr<Pager>> Open(std::unique_ptr<File> file,
                                             size_t capacity, const std::string& name);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// \brief Appends a fresh empty page and returns it pinned and dirty.
  /// ResourceExhausted if every frame is pinned.
  Result<PageRef> AllocatePage();

  /// \brief Reads a page through the pool, pinned. ResourceExhausted if the
  /// page is not resident and every frame is pinned.
  Result<PageRef> FetchPage(uint32_t page_id);

  /// \brief Writes back every dirty page and flushes the file.
  Status Flush();

  /// \brief Number of pages in the file.
  uint32_t page_count() const { return page_count_; }

  /// \brief Currently pinned frames (for tests and invariant checks).
  size_t pinned_frames() const { return pinned_frames_; }

  const PagerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PagerStats{}; }

 private:
  friend class PageRef;

  Pager(std::unique_ptr<File> file, std::string name, size_t capacity,
        uint32_t page_count)
      : file_(std::move(file)),
        name_(std::move(name)),
        capacity_(capacity),
        page_count_(page_count) {}

  Status WriteBack(internal::PageFrame& frame);
  Status EvictIfFull();
  void Unpin(internal::PageFrame* frame);

  std::unique_ptr<File> file_;
  std::string name_;
  size_t capacity_;
  uint32_t page_count_;
  size_t pinned_frames_ = 0;
  PagerStats stats_;
  // LRU: most-recent at front. The map stores list iterators for O(1) touch.
  std::list<internal::PageFrame> lru_;
  std::unordered_map<uint32_t, std::list<internal::PageFrame>::iterator> frames_;
};

}  // namespace xst
