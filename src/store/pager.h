// Pager: a file of pages behind an LRU buffer pool.
//
// The 1977 paper's backend context (block devices, scarce memory) is
// simulated with a page file plus a bounded write-back cache. The pager
// tracks hit/miss/eviction counters so the benchmarks can report locality
// behavior, and validates checksums on every fill — a torn or tampered page
// surfaces as Corruption, never as silent bad data.
//
// Not thread-safe: the set store serializes access (single writer, as the
// era's systems did).

#pragma once

#include <cstdio>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/common/result.h"
#include "src/store/page.h"

namespace xst {

struct PagerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t allocations = 0;
};

class Pager {
 public:
  /// \brief Opens (creating if needed) a page file. `capacity` is the
  /// buffer-pool size in pages (≥ 1).
  static Result<std::unique_ptr<Pager>> Open(const std::string& path, size_t capacity = 64);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// \brief Appends a fresh empty page; returns its id.
  Result<uint32_t> AllocatePage();

  /// \brief Reads a page through the pool. The reference stays valid until
  /// the next pager call (eviction may recycle the frame).
  Result<Page*> FetchPage(uint32_t page_id);

  /// \brief Marks a fetched page dirty so eviction/flush persists it.
  Status MarkDirty(uint32_t page_id);

  /// \brief Writes back every dirty page and fsyncs.
  Status Flush();

  /// \brief Number of pages in the file.
  uint32_t page_count() const { return page_count_; }

  const PagerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PagerStats{}; }

 private:
  Pager(std::FILE* file, size_t capacity, uint32_t page_count)
      : file_(file), capacity_(capacity), page_count_(page_count) {}

  struct Frame {
    Page page;
    bool dirty = false;
  };

  Status WriteBack(uint32_t page_id, const Frame& frame);
  Status EvictIfFull();

  std::FILE* file_;
  size_t capacity_;
  uint32_t page_count_;
  PagerStats stats_;
  // LRU: most-recent at front. The map stores list iterators for O(1) touch.
  std::list<std::pair<uint32_t, Frame>> lru_;
  std::unordered_map<uint32_t, std::list<std::pair<uint32_t, Frame>>::iterator> frames_;
};

}  // namespace xst
