// Pager: a file of pages behind a latch-sharded LRU buffer pool with pin
// discipline.
//
// The 1977 paper's backend context (block devices, scarce memory) is
// simulated with a page file plus a bounded write-back cache. The pager
// tracks hit/miss/eviction counters so the benchmarks can report locality
// behavior, and validates checksums on every fill — a torn or tampered page
// surfaces as Corruption, never as silent bad data. The checksum is seeded
// with the page id, so a misdirected write (right bytes, wrong offset) is
// also Corruption.
//
// Access is exclusively through PageRef, an RAII pin handle: a pinned frame
// is never evicted, so the reference stays valid for the handle's entire
// lifetime — across further fetches and allocations. The historical
// use-after-evict (holding a raw Page* across a pager call that recycled
// the frame) is unrepresentable in this API. When every frame is pinned and
// a fetch needs a new one, the pager returns ResourceExhausted instead of
// invalidating anything.
//
// I/O goes through the File seam (file.h); tests interpose FaultFile to
// prove every read/write/flush failure surfaces as a Status.
//
// With a Wal attached (AttachWal; see wal.h and DESIGN.md §14) the pager
// NEVER writes the main file on its own: evicting a dirty frame spills its
// image into the log instead of the file, fetches read through the log's
// image table before touching the file, and the main file is written only
// by ApplyCheckpointImage — the no-steal ordering that keeps uncommitted
// (and committed-but-unsynced) pages from ever overtaking the log.
//
// Thread safety (DESIGN.md §15): the frame table is split into
// `latch_shards` shards keyed by page id, each holding its own LRU list and
// map behind a rank-20 latch. Concurrent readers stream page copies out
// through ReadPageSnapshot while a single writer (serialized externally on
// SetStore::mu_) mutates content under PageWriteGuard; per-frame pin counts
// are atomic so a reader-triggered eviction scan can race the writer's
// pins. The latch protocol:
//   * A shard latch is held only for map/LRU surgery and in-pool byte
//     copies — never across main-file I/O on the fetch path (misses read
//     the file unlatched, then re-latch and double-check).
//   * Shard latches never nest with each other; a WAL spill under a latch
//     takes Wal::mu_, which ranks above the latch floor (rank order
//     SetStore::mu_ < shard latch < Wal::mu_; locksmith-checked).
//   * Frame content and the dirty/logged flags are read and written only
//     under the owning shard's latch (a per-instance capability Clang's
//     TSA cannot name; the locksmith rules and TSan cover it).
// `Open` defaults to one shard — exactly the historical coarse pager, which
// direct users (tests, single-threaded tools) rely on for deterministic
// LRU/eviction accounting. SetStore requests a real split.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/sync.h"
#include "src/store/file.h"
#include "src/store/page.h"

namespace xst {

class Wal;

struct PagerStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t allocations = 0;
};

namespace internal {

// Registry names of the process-wide pager counters. Per-instance stats
// (Pager::stats) stay exact per pager; these aggregate across every pager in
// the process, which is what ExplainAnalyze's pages-touched attribution and
// the benchmark metrics dump read.
inline constexpr const char* kPagerHitsCounter = "pager.fetch.hits";
inline constexpr const char* kPagerMissesCounter = "pager.fetch.misses";
inline constexpr const char* kPagerEvictionsCounter = "pager.evictions";
inline constexpr const char* kPagerWritebacksCounter = "pager.writebacks";
inline constexpr const char* kPagerAllocationsCounter = "pager.allocations";
// Latch-shard telemetry: every shard-latch acquisition, and the subset that
// found the latch already held (TryLock failed → contended Lock).
inline constexpr const char* kPagerLatchAcquisitionsCounter =
    "pager.latch.acquisitions";
inline constexpr const char* kPagerLatchContentionCounter =
    "pager.latch.shard_contention";

/// \brief A buffer-pool frame. Lives in a shard's LRU list (std::list nodes
/// are address-stable), addressed by PageRef while pinned.
///
/// `pins` is atomic: pin acquisition (0→1 and every increment) happens under
/// the owning shard's latch, but release is latch-free — the evictor's
/// pins==0 load under the latch is ordered after the releasing decrement,
/// and PageRef::Reset never touches the frame after that decrement, so a
/// frame freed by the evictor is never revisited by the releasing thread.
/// `page`, `dirty` and `logged` are guarded by the owning shard's latch (a
/// per-instance capability TSA cannot express; see the file comment).
struct PageFrame {
  Page page;
  uint32_t page_id = kInvalidPageId;
  std::atomic<uint32_t> pins{0};
  bool dirty = false;
  // WAL mode: the current dirty content has been captured as a log record.
  // Content mutation clears it, so "dirty && !logged" is exactly the set of
  // frames DrainUnloggedToWal must capture before a commit record seals the
  // txn.
  bool logged = false;
};

/// \brief One latch shard: a slice of the frame table keyed by page id.
struct PagerShard {
  // The pager latch: the blocking floor of the lock hierarchy (DESIGN.md
  // §15) — nothing acquired at or above this rank may reach a blocking
  // point while held.
  mutable Mutex latch XST_LOCK_RANK(20);
  // LRU: most-recent at front. The map stores list iterators for O(1) touch.
  std::list<PageFrame> lru XST_GUARDED_BY(latch);
  std::unordered_map<uint32_t, std::list<PageFrame>::iterator> frames
      XST_GUARDED_BY(latch);
};

/// \brief RAII shard-latch acquisition with contention telemetry: a TryLock
/// probe counts `pager.latch.shard_contention` before falling back to a
/// blocking Lock; every acquisition counts `pager.latch.acquisitions`.
class XST_SCOPED_CAPABILITY ShardLatchLock {
 public:
  // The constructor body is opted out of TSA: the TryLock-then-Lock
  // telemetry probe confuses the analysis inside a ctor that is itself
  // ACQUIRE-annotated; callers still get the full scoped-capability
  // contract from the attributes.
  explicit ShardLatchLock(PagerShard* shard) XST_ACQUIRE(shard->latch)
      XST_NO_THREAD_SAFETY_ANALYSIS;
  ~ShardLatchLock() XST_RELEASE() { shard_->latch.Unlock(); }

  ShardLatchLock(const ShardLatchLock&) = delete;
  ShardLatchLock& operator=(const ShardLatchLock&) = delete;

 private:
  PagerShard* shard_;
};

}  // namespace internal

class Pager;

/// \brief RAII pin on a buffer-pool frame.
///
/// Holding a PageRef guarantees the frame is resident and address-stable;
/// releasing (destruction, move-assignment, Reset) unpins it. Move-only.
/// A PageRef must not outlive its Pager (checked at pager teardown).
///
/// A pin keeps the frame resident but does NOT license content access under
/// concurrency: mutate through PageWriteGuard (which latches the frame's
/// shard) and read shared pages through Pager::ReadPageSnapshot. Direct
/// `ref->` access remains correct wherever the caller is the only thread
/// touching the pager (tests, tools, the store's bootstrap).
///
/// [[nodiscard]]: a discarded PageRef unpins immediately, so the page the
/// caller thought it pinned is evictable right away — exactly the
/// use-after-evict window the pin API exists to close.
class [[nodiscard]] PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Reset(); }

  /// \brief True iff the handle pins a frame.
  explicit operator bool() const { return frame_ != nullptr; }

  Page* operator->() const { return &frame_->page; }
  Page& operator*() const { return frame_->page; }

  /// \brief The pinned page's id.
  uint32_t id() const { return frame_->page_id; }

  /// \brief Marks the pinned page dirty so eviction/flush persists it (any
  /// previously logged image is stale for the new content). Latches the
  /// frame's shard for the flag flip; content written beforehand must itself
  /// have been written under a PageWriteGuard when readers may be live.
  void MarkDirty();

  /// \brief Unpins early (the handle becomes empty).
  void Reset();

 private:
  friend class Pager;
  friend class PageWriteGuard;
  PageRef(Pager* pager, internal::PageFrame* frame);

  Pager* pager_ = nullptr;
  internal::PageFrame* frame_ = nullptr;
};

/// \brief RAII content-write window on a pinned frame: latches the frame's
/// shard on construction, exposes the page for mutation, and on destruction
/// marks the frame dirty (logged image invalidated) before unlatching. The
/// only legal way to mutate page content while concurrent readers may be
/// streaming snapshots (DESIGN.md §15).
///
/// Which shard is latched depends on the pinned page id — a per-instance
/// capability Clang's TSA cannot name, so the guard is opted out of the
/// static analysis; the locksmith blocking-under-latch rule still sees the
/// scope (keep it free of I/O and waits).
class [[nodiscard]] PageWriteGuard {
 public:
  explicit PageWriteGuard(PageRef& ref) XST_NO_THREAD_SAFETY_ANALYSIS;
  ~PageWriteGuard() XST_NO_THREAD_SAFETY_ANALYSIS;

  PageWriteGuard(const PageWriteGuard&) = delete;
  PageWriteGuard& operator=(const PageWriteGuard&) = delete;

  Page* operator->() const { return &frame_->page; }
  Page& operator*() const { return frame_->page; }

 private:
  internal::PageFrame* frame_;
  internal::PagerShard* shard_;
};

class Pager {
 public:
  /// \brief Opens (creating if needed) a page file through StdioFile.
  /// `capacity` is the buffer-pool size in pages (≥ 1); `latch_shards`
  /// splits the frame table (see the file comment — 1 preserves the exact
  /// coarse LRU accounting).
  static Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                             size_t capacity = 64,
                                             size_t latch_shards = 1);

  /// \brief Opens over a caller-supplied File (fault injection, alternate
  /// backends). `name` labels error messages.
  static Result<std::unique_ptr<Pager>> Open(std::unique_ptr<File> file,
                                             size_t capacity, const std::string& name,
                                             size_t latch_shards = 1);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// \brief Appends a fresh empty page and returns it pinned and dirty.
  /// ResourceExhausted if every frame in the page's shard is pinned.
  Result<PageRef> AllocatePage();

  /// \brief Reads a page through the pool, pinned. ResourceExhausted if the
  /// page is not resident and every frame in its shard is pinned.
  Result<PageRef> FetchPage(uint32_t page_id);

  /// \brief Copies the page's current content into `*out` without pinning:
  /// hits copy the resident frame under its shard latch; misses read
  /// through the log's image table and the main file with no latch held,
  /// then re-latch, re-check for a raced-in newer version, and cache the
  /// clean frame when that is provably safe. The read path of concurrent
  /// SetStore readers (DESIGN.md §15).
  Status ReadPageSnapshot(uint32_t page_id, Page* out);

  /// \brief Writes back every dirty page and flushes the file. Unreachable
  /// in WAL mode (durability is the log's job; see AttachWal).
  Status Flush();

  /// \brief Puts the pager in WAL mode: dirty evictions spill to the log,
  /// fetches read through the log's image table, teardown skips its flush,
  /// and the logical page count covers pages that exist only as log images
  /// (the main file lags the log until the next checkpoint). The Wal must
  /// outlive the pager.
  void AttachWal(Wal* wal);

  /// \brief Logs every dirty-and-unlogged frame's image (the pages the
  /// current transaction mutated that pool pressure has not already
  /// spilled). Called immediately before the commit record is appended.
  Status DrainUnloggedToWal();

  /// \brief True iff some frame is dirty with no logged image — i.e. the
  /// current transaction has touched pages that only a commit (or abort +
  /// pager reload) can resolve. Lets logically-no-op mutations that still
  /// dirtied pages (e.g. a duplicate insert that allocated overflow pages
  /// before detection) decide between a cheap abort and a real commit.
  bool HasUnloggedDirty() const;

  /// \brief Checkpoint writer: puts `bytes` (a full page image) at the
  /// page's offset in the main file and marks a matching resident frame
  /// clean. The only main-file write path in WAL mode.
  Status ApplyCheckpointImage(uint32_t page_id, const std::string& bytes);

  /// \brief Fsyncs the main file (checkpoint's final barrier).
  Status SyncFile();

  /// \brief Number of pages in the file.
  uint32_t page_count() const { return page_count_.load(std::memory_order_acquire); }

  /// \brief Currently pinned frames (for tests and invariant checks).
  size_t pinned_frames() const { return pinned_frames_.load(std::memory_order_relaxed); }

  /// \brief The number of latch shards the frame table is split into.
  size_t latch_shards() const { return shards_.size(); }

  /// \brief Consistent-enough snapshot of the counters (relaxed loads).
  PagerStats stats() const;
  void ResetStats();

 private:
  friend class PageRef;
  friend class PageWriteGuard;

  Pager(std::unique_ptr<File> file, std::string name, size_t capacity,
        uint32_t page_count, size_t latch_shards);

  internal::PagerShard& ShardFor(uint32_t page_id) const {
    return *shards_[page_id & shard_mask_];
  }
  /// Legacy-mode (no WAL) dirty-page write-back to the main file.
  Status WriteBack(internal::PagerShard& shard, internal::PageFrame& frame)
      XST_REQUIRES(shard.latch);
  Status EvictIfFullLocked(internal::PagerShard& shard) XST_REQUIRES(shard.latch);
  void Unpin(internal::PageFrame* frame);
  void MarkFrameDirty(internal::PageFrame* frame);

  std::unique_ptr<File> file_;  // internally synchronized (StdioFile::mu_)
  const std::string name_;
  const size_t capacity_per_shard_;
  Wal* wal_ = nullptr;  // unowned; null = legacy direct-write mode; set once
                        // before concurrency starts (AttachWal in Open)
  std::atomic<uint32_t> page_count_;
  std::atomic<size_t> pinned_frames_{0};
  // Counts every main-file write (checkpoint images, legacy write-backs).
  // A snapshot miss records it before reading the file unlatched and caches
  // its bytes only if it is unchanged at re-latch — otherwise a checkpoint
  // may have made the file newer than what was read (see pager.cc).
  std::atomic<uint64_t> file_write_ticks_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> writebacks_{0};
  std::atomic<uint64_t> allocations_{0};
  // Immutable after construction (the vector itself; shards are internally
  // latched). unique_ptr because Mutex is not movable.
  std::vector<std::unique_ptr<internal::PagerShard>> shards_;
  uint32_t shard_mask_;
};

}  // namespace xst
