// SetStore-backed implementations of the core cursor abstraction
// (src/core/cursor.h), so VM operands stream from the pager the same way
// they stream from the interner.
//
// Today a stored set is decoded into the interner on open (Get) and the
// cursor then serves fixed-size batch slices of the decoded member list —
// the batching contract consumers must already honor, so a future
// page-native cursor (streaming directly off B+tree leaves, ROADMAP item 1)
// can drop in without touching any consumer. Atoms are handed over via
// WholeSet(), which is the only representation that preserves them.

#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "src/core/cursor.h"
#include "src/store/setstore.h"

namespace xst {

/// \brief Members per NextBatch() from a stored cursor.
inline constexpr size_t kStoredCursorBatch = 4096;

/// \brief Cursor over one stored set, serving batch slices of its canonical
/// member list.
class StoredSetCursor final : public MemberCursor {
 public:
  explicit StoredSetCursor(XSet set) : set_(std::move(set)) {}

  std::span<const Membership> NextBatch() override {
    std::span<const Membership> ms = set_.members();
    if (offset_ >= ms.size()) return {};
    const size_t len = std::min(kStoredCursorBatch, ms.size() - offset_);
    std::span<const Membership> batch = ms.subspan(offset_, len);
    offset_ += len;
    return batch;
  }

  std::optional<XSet> WholeSet() const override {
    // Atoms have no member list to stream; sets stream in batches so
    // consumers exercise the same path a page-native cursor will use.
    if (set_.is_atom()) return set_;
    return std::nullopt;
  }

 private:
  XSet set_;
  size_t offset_ = 0;
};

/// \brief CursorSource resolving names against a SetStore catalog.
class StoreCursorSource final : public CursorSource {
 public:
  explicit StoreCursorSource(SetStore& store) : store_(store) {}

  Result<std::unique_ptr<MemberCursor>> Open(const std::string& name) const override {
    Result<XSet> value = store_.Get(name);
    if (!value.ok()) return value.status();
    return std::unique_ptr<MemberCursor>(new StoredSetCursor(std::move(*value)));
  }

 private:
  SetStore& store_;
};

}  // namespace xst
