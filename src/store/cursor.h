// SetStore-backed implementations of the core cursor abstraction
// (src/core/cursor.h), so VM operands stream from the pager the same way
// they stream from the interner.
//
// Two stored shapes, one contract:
//  - blob sets decode into the interner on open (Get) and the cursor serves
//    fixed-size batch slices of the decoded member list;
//  - ordered-index sets (SetStore::PutIndexed) stream leaf-by-leaf off the
//    B+tree via BTreeCursor, never materializing the whole set — one leaf
//    page pinned per batch.
// StoreCursorSource picks per name through SetStore::OpenCursor, so VM
// consumers of the kLoadBinding path are storage-mode agnostic. Atoms are
// handed over via WholeSet(), which is the only representation that
// preserves them. Page-backed batches can fail (I/O, corruption); NextBatch
// reports that as exhaustion and consumers must check status() afterwards.

#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/cursor.h"
#include "src/store/btree.h"
#include "src/store/setstore.h"

namespace xst {

/// \brief Members per NextBatch() from a stored cursor.
inline constexpr size_t kStoredCursorBatch = 4096;

/// \brief Cursor over one stored set, serving batch slices of its canonical
/// member list.
class StoredSetCursor final : public MemberCursor {
 public:
  explicit StoredSetCursor(XSet set) : set_(std::move(set)) {}

  std::span<const Membership> NextBatch() override {
    std::span<const Membership> ms = set_.members();
    if (offset_ >= ms.size()) return {};
    const size_t len = std::min(kStoredCursorBatch, ms.size() - offset_);
    std::span<const Membership> batch = ms.subspan(offset_, len);
    offset_ += len;
    return batch;
  }

  std::optional<XSet> WholeSet() const override {
    // Atoms have no member list to stream; sets stream in batches so
    // consumers exercise the same path a page-native cursor will use.
    if (set_.is_atom()) return set_;
    return std::nullopt;
  }

 private:
  XSet set_;
  size_t offset_ = 0;
};

/// \brief Cursor streaming an ordered-index set leaf-by-leaf. Each
/// NextBatch() is one SetStore::ReadIndexBatch call — one leaf page of
/// memberships — so memory stays O(leaf), not O(set). Optionally bounded
/// above by an element (`hi`) for range σ-restriction; the lower bound is
/// baked into the starting position by SeekElement. Invalidated by any
/// mutation of the store.
class BTreeCursor final : public MemberCursor {
 public:
  BTreeCursor(SetStore& store, BTreeCursorPos pos, std::optional<XSet> hi)
      : store_(store), pos_(pos), hi_(std::move(hi)) {}

  std::span<const Membership> NextBatch() override {
    if (!status_.ok()) return {};
    buffer_.clear();
    Status read = store_.ReadIndexBatch(&pos_, hi_ ? &*hi_ : nullptr, &buffer_);
    if (!read.ok()) {
      status_ = std::move(read);
      buffer_.clear();
    }
    return buffer_;
  }

  Status status() const override { return status_; }

 private:
  SetStore& store_;
  BTreeCursorPos pos_;
  std::optional<XSet> hi_;
  std::vector<Membership> buffer_;
  Status status_;
};

/// \brief CursorSource resolving names against a SetStore catalog. The
/// store chooses the cursor per storage mode (blob slices vs B+tree leaf
/// streaming), and indexed sets serve element ranges by seeking instead of
/// filtering.
class StoreCursorSource final : public CursorSource {
 public:
  explicit StoreCursorSource(SetStore& store) : store_(store) {}

  Result<std::unique_ptr<MemberCursor>> Open(const std::string& name) const override {
    return store_.OpenCursor(name);
  }

  Result<std::unique_ptr<MemberCursor>> OpenElementRange(
      const std::string& name, const XSet& lo, const XSet& hi) const override {
    return store_.OpenElementRange(name, lo, hi);
  }

 private:
  SetStore& store_;
};

}  // namespace xst
