#include "src/store/catalog.h"

#include "src/ops/tuple.h"

namespace xst {

void Catalog::Put(const std::string& name, const CatalogEntry& entry) {
  entries_[name] = entry;
}

Result<CatalogEntry> Catalog::Get(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("catalog: no set named '" + name + "'");
  }
  return it->second;
}

Status Catalog::Remove(const std::string& name) {
  if (entries_.erase(name) == 0) {
    return Status::NotFound("catalog: no set named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

XSet Catalog::ToXSet() const {
  std::vector<XSet> tuples;
  tuples.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    tuples.push_back(XSet::Tuple({XSet::String(name),
                                  XSet::Int(entry.first_page),
                                  XSet::Int(entry.page_span),
                                  XSet::Int(static_cast<int64_t>(entry.byte_length))}));
  }
  return XSet::Classical(tuples);
}

Result<Catalog> Catalog::FromXSet(const XSet& repr) {
  Catalog catalog;
  for (const Membership& m : repr.members()) {
    std::vector<XSet> parts;
    if (!m.scope.empty() || !TupleElements(m.element, &parts) || parts.size() != 4 ||
        !parts[0].is_string() || !parts[1].is_int() || !parts[2].is_int() ||
        !parts[3].is_int()) {
      return Status::TypeError("catalog: malformed entry " + m.element.ToString());
    }
    CatalogEntry entry;
    entry.first_page = static_cast<uint32_t>(parts[1].int_value());
    entry.page_span = static_cast<uint32_t>(parts[2].int_value());
    entry.byte_length = static_cast<uint64_t>(parts[3].int_value());
    catalog.Put(parts[0].str_value(), entry);
  }
  return catalog;
}

}  // namespace xst
