#include "src/store/catalog.h"

#include "src/ops/tuple.h"

namespace xst {

void Catalog::Put(const std::string& name, const CatalogEntry& entry) {
  entries_[name] = entry;
}

Result<CatalogEntry> Catalog::Get(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("catalog: no set named '" + name + "'");
  }
  return it->second;
}

Status Catalog::Remove(const std::string& name) {
  if (entries_.erase(name) == 0) {
    return Status::NotFound("catalog: no set named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

XSet Catalog::ToXSet() const {
  std::vector<XSet> tuples;
  tuples.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    std::vector<XSet> parts{XSet::String(name), XSet::Int(entry.first_page),
                            XSet::Int(entry.page_span),
                            XSet::Int(static_cast<int64_t>(entry.byte_length))};
    // Blob entries keep the historical 4-tuple spelling byte-for-byte; only
    // non-blob kinds carry the discriminant.
    if (entry.kind != CatalogEntry::kKindBlob) parts.push_back(XSet::Int(entry.kind));
    tuples.push_back(XSet::Tuple(parts));
  }
  return XSet::Classical(tuples);
}

Result<Catalog> Catalog::FromXSet(const XSet& repr) {
  Catalog catalog;
  for (const Membership& m : repr.members()) {
    std::vector<XSet> parts;
    if (!m.scope.empty() || !TupleElements(m.element, &parts) ||
        (parts.size() != 4 && parts.size() != 5) || !parts[0].is_string() ||
        !parts[1].is_int() || !parts[2].is_int() || !parts[3].is_int() ||
        (parts.size() == 5 && !parts[4].is_int())) {
      return Status::TypeError("catalog: malformed entry " + m.element.ToString());
    }
    // Range-check before the narrowing casts: a negative or oversized field
    // must surface as Corruption here, not wrap into a bogus page id that
    // fails much later (or, worse, aliases a live page).
    const int64_t first_page = parts[1].int_value();
    const int64_t page_span = parts[2].int_value();
    const int64_t byte_length = parts[3].int_value();
    constexpr int64_t kMaxU32 = 0xffffffff;
    if (first_page < 0 || first_page > kMaxU32 || page_span < 0 ||
        page_span > kMaxU32 || byte_length < 0) {
      return Status::Corruption(
          "catalog: entry '" + parts[0].str_value() + "' field out of range"
          " (first_page=" + std::to_string(first_page) +
          ", page_span=" + std::to_string(page_span) +
          ", byte_length=" + std::to_string(byte_length) + ")");
    }
    const int64_t kind = parts.size() == 5 ? parts[4].int_value()
                                           : CatalogEntry::kKindBlob;
    if (kind != CatalogEntry::kKindBlob && kind != CatalogEntry::kKindIndex) {
      return Status::Corruption("catalog: entry '" + parts[0].str_value() +
                                "' has unknown kind " + std::to_string(kind));
    }
    CatalogEntry entry;
    entry.first_page = static_cast<uint32_t>(first_page);
    entry.page_span = static_cast<uint32_t>(page_span);
    entry.byte_length = static_cast<uint64_t>(byte_length);
    entry.kind = static_cast<uint8_t>(kind);
    catalog.Put(parts[0].str_value(), entry);
  }
  return catalog;
}

}  // namespace xst
