// The set-store catalog: name → blob location.
//
// Dogfooding the thesis that every data representation has a set identity,
// the catalog itself round-trips through an extended set:
//
//   { ⟨"name", first_page, page_span, byte_length⟩, … }
//
// — a classical set of 4-tuples — and is persisted with the same codec and
// pages as user data.
//
// Ordered-index entries (PR8) extend the tuple with a kind discriminant:
// ⟨"name", root_page, height, member_count, kind⟩. Blob entries keep the
// 4-tuple spelling, so catalogs written before indexes existed load
// unchanged, and the three location fields are reinterpreted per kind
// (first_page=root, page_span=height, byte_length=cardinality).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {

struct CatalogEntry {
  uint32_t first_page = kInvalidFirstPage;  // index kind: the tree's root page
  uint32_t page_span = 0;                   // index kind: the tree's height
  uint64_t byte_length = 0;                 // index kind: the member count
  uint8_t kind = kKindBlob;

  static constexpr uint32_t kInvalidFirstPage = 0xffffffff;
  static constexpr uint8_t kKindBlob = 0;
  static constexpr uint8_t kKindIndex = 1;
  bool operator==(const CatalogEntry&) const = default;
};

class Catalog {
 public:
  /// \brief Registers or replaces a name.
  void Put(const std::string& name, const CatalogEntry& entry);

  /// \brief Looks a name up; NotFound if absent.
  Result<CatalogEntry> Get(const std::string& name) const;

  /// \brief Removes a name; NotFound if absent.
  Status Remove(const std::string& name);

  bool Contains(const std::string& name) const { return entries_.count(name) != 0; }

  /// \brief All names in lexicographic order.
  std::vector<std::string> Names() const;

  size_t size() const { return entries_.size(); }

  /// \brief The catalog as an extended set (see file comment).
  XSet ToXSet() const;

  /// \brief Rebuilds a catalog from its set form; TypeError on malformed
  /// entries.
  static Result<Catalog> FromXSet(const XSet& repr);

 private:
  std::map<std::string, CatalogEntry> entries_;
};

}  // namespace xst
