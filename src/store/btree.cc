#include "src/store/btree.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/common/check.h"
#include "src/common/macros.h"
#include "src/core/order.h"
#include "src/store/codec.h"

namespace xst {

namespace {

constexpr uint8_t kLeafNode = 0x00;
constexpr uint8_t kInternalNode = 0x01;
// First byte of an overflow reference; the codec's value tags stop at 0x04,
// so an entry payload starting with 0xFE is unambiguous.
constexpr uint8_t kOverflowTag = 0xfe;

constexpr size_t kPageHeaderBytes = 16;  // checksum + slot count + free offset
constexpr size_t kSlotBytes = 8;         // per-record directory cost
// Header record budget: kind byte + varint(next+1) ≤ 6 payload bytes.
constexpr size_t kNodeHeaderBudget = kSlotBytes + 8;
/// Bytes available for entry records (slot cost included) on one node page.
constexpr size_t kNodeCapacity = kPageSize - kPageHeaderBytes - kNodeHeaderBudget;
/// Non-root nodes keep at least this many bytes of entries. A quarter page:
/// large enough that splits (which cut at the byte midpoint of an overfull
/// node) and borrows (bounded below by one entry over the floor) always
/// land both halves at or above it.
constexpr size_t kMinNodeFill = kNodeCapacity / 4;
/// Descent bound (local alias): see kMaxBTreeHeight.
constexpr uint32_t kMaxHeight = kMaxBTreeHeight;

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

Status Corrupt(uint32_t page_id, const std::string& what) {
  return Status::Corruption("btree page " + std::to_string(page_id) + ": " + what);
}

/// One internal-node entry: child pointer plus the exact minimum membership
/// of the child's subtree (as an entry payload, inline or overflow ref).
struct ChildEntry {
  uint32_t child = kInvalidPageId;
  std::string key;
};

/// A decoded node image. Mutation rewrites the whole page from one of
/// these, so the in-memory form is the unit of all structural edits.
struct Node {
  bool leaf = true;
  uint32_t next = kInvalidPageId;   // leaves: right sibling, or none
  std::vector<std::string> members; // leaf entry payloads
  std::vector<ChildEntry> children; // internal entries

  size_t entry_count() const { return leaf ? members.size() : children.size(); }

  size_t used_bytes() const {
    size_t total = 0;
    if (leaf) {
      for (const std::string& e : members) total += kSlotBytes + e.size();
    } else {
      for (const ChildEntry& e : children) {
        total += kSlotBytes + VarintLen(e.child) + e.key.size();
      }
    }
    return total;
  }
};

Status FillPage(Page* page, const Node& node) {
  *page = Page();
  std::string header(1, static_cast<char>(node.leaf ? kLeafNode : kInternalNode));
  if (node.leaf) {
    PutVarint(node.next == kInvalidPageId ? 0 : static_cast<uint64_t>(node.next) + 1,
              &header);
  }
  XST_RETURN_NOT_OK(page->AddRecord(header).status());
  if (node.leaf) {
    for (const std::string& e : node.members) {
      XST_RETURN_NOT_OK(page->AddRecord(e).status());
    }
  } else {
    for (const ChildEntry& e : node.children) {
      std::string record;
      PutVarint(e.child, &record);
      record += e.key;
      XST_RETURN_NOT_OK(page->AddRecord(record).status());
    }
  }
  return Status::OK();
}

Status WriteNode(Pager& pager, uint32_t page_id, const Node& node) {
  XST_ASSIGN_OR_RAISE(PageRef page, pager.FetchPage(page_id));
  // Content mutation happens under the frame's shard latch so a concurrent
  // optimistic reader copies either the whole old page or the whole new one
  // (its epoch validation then rejects the new one); the guard marks the
  // frame dirty on scope exit.
  PageWriteGuard guard(page);
  return FillPage(&*guard, node);
}

Result<uint32_t> AllocateNode(Pager& pager, const Node& node) {
  XST_ASSIGN_OR_RAISE(PageRef page, pager.AllocatePage());
  PageWriteGuard guard(page);
  XST_RETURN_NOT_OK(FillPage(&*guard, node));
  return page.id();
}

Status ReadNode(Pager& pager, uint32_t page_id, Node* node) {
  // Snapshot read: no pin held, safe on the concurrent optimistic read path
  // (the copy is taken under the page's shard latch).
  Page snapshot;
  XST_RETURN_NOT_OK(pager.ReadPageSnapshot(page_id, &snapshot));
  const Page* page = &snapshot;
  if (page->slot_count() == 0) return Corrupt(page_id, "missing node header");
  Result<std::string_view> header = page->GetRecord(0);
  if (!header.ok()) return Corrupt(page_id, "unreadable node header");
  uint8_t kind = static_cast<uint8_t>((*header)[0]);
  if (kind != kLeafNode && kind != kInternalNode) {
    return Corrupt(page_id, "unknown node kind " + std::to_string(kind));
  }
  node->leaf = kind == kLeafNode;
  node->next = kInvalidPageId;
  node->members.clear();
  node->children.clear();
  size_t offset = 1;
  if (node->leaf) {
    uint64_t next_plus_1 = 0;
    if (!GetVarint(*header, &offset, &next_plus_1) || offset != header->size() ||
        next_plus_1 > kInvalidPageId) {
      return Corrupt(page_id, "malformed leaf header");
    }
    if (next_plus_1 != 0) node->next = static_cast<uint32_t>(next_plus_1 - 1);
  } else if (header->size() != 1) {
    return Corrupt(page_id, "malformed internal header");
  }
  for (uint32_t slot = 1; slot < page->slot_count(); ++slot) {
    Result<std::string_view> record = page->GetRecord(slot);
    if (!record.ok()) return Corrupt(page_id, "unreadable entry record");
    if (node->leaf) {
      node->members.emplace_back(*record);
    } else {
      size_t pos = 0;
      uint64_t child = 0;
      if (!GetVarint(*record, &pos, &child) || child > kInvalidPageId ||
          pos >= record->size()) {
        return Corrupt(page_id, "malformed internal entry");
      }
      node->children.push_back(
          ChildEntry{static_cast<uint32_t>(child), std::string(record->substr(pos))});
    }
  }
  return Status::OK();
}

/// Encodes a membership as an entry payload, spilling to overflow pages
/// when the encoding exceeds kMaxInlineEntry.
Result<std::string> EncodeEntry(Pager& pager, const Membership& m) {
  std::string bytes;
  EncodeXSet(m.element, &bytes);
  EncodeXSet(m.scope, &bytes);
  if (bytes.size() <= kMaxInlineEntry) return bytes;
  const size_t chunk_capacity = Page().FreeSpace();
  uint32_t first = kInvalidPageId;
  uint32_t span = 0;
  size_t offset = 0;
  while (offset < bytes.size()) {
    size_t chunk = std::min(chunk_capacity, bytes.size() - offset);
    XST_ASSIGN_OR_RAISE(PageRef page, pager.AllocatePage());
    if (span == 0) first = page.id();
    PageWriteGuard guard(page);
    XST_RETURN_NOT_OK(
        guard->AddRecord(std::string_view(bytes).substr(offset, chunk)).status());
    offset += chunk;
    ++span;
  }
  std::string ref(1, static_cast<char>(kOverflowTag));
  PutVarint(first, &ref);
  PutVarint(span, &ref);
  PutVarint(bytes.size(), &ref);
  return ref;
}

Result<Membership> DecodeEntry(Pager& pager, std::string_view payload) {
  if (payload.empty()) return Status::Corruption("btree: empty entry payload");
  std::string overflow;
  if (static_cast<uint8_t>(payload[0]) == kOverflowTag) {
    size_t pos = 1;
    uint64_t first = 0, span = 0, length = 0;
    if (!GetVarint(payload, &pos, &first) || !GetVarint(payload, &pos, &span) ||
        !GetVarint(payload, &pos, &length) || pos != payload.size() ||
        first == 0 || first >= kInvalidPageId || span == 0 || span > pager.page_count() ||
        first > pager.page_count() - span) {
      return Status::Corruption("btree: malformed overflow reference");
    }
    overflow.reserve(length);
    for (uint64_t i = 0; i < span; ++i) {
      Page chunk_page;
      XST_RETURN_NOT_OK(
          pager.ReadPageSnapshot(static_cast<uint32_t>(first + i), &chunk_page));
      Result<std::string_view> record = chunk_page.GetRecord(0);
      if (!record.ok()) {
        return Status::Corruption("btree: unreadable overflow chunk");
      }
      overflow.append(*record);
    }
    if (overflow.size() != length) {
      return Status::Corruption("btree: overflow length mismatch");
    }
    payload = overflow;
  }
  size_t offset = 0;
  XST_ASSIGN_OR_RAISE(XSet element, DecodeXSet(payload, &offset));
  XST_ASSIGN_OR_RAISE(XSet scope, DecodeXSet(payload, &offset));
  if (offset != payload.size()) {
    return Status::Corruption("btree: trailing bytes after entry");
  }
  return Membership{std::move(element), std::move(scope)};
}

/// First index in `entries` whose membership is ≥ m; *found set when the
/// entry at that index equals m. Decode-on-probe binary search.
Result<size_t> LeafLowerBound(Pager& pager, const std::vector<std::string>& entries,
                              const Membership& m, bool* found) {
  size_t lo = 0, hi = entries.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    XST_ASSIGN_OR_RAISE(Membership probe, DecodeEntry(pager, entries[mid]));
    if (CompareMembership(probe, m) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *found = false;
  if (lo < entries.size()) {
    XST_ASSIGN_OR_RAISE(Membership probe, DecodeEntry(pager, entries[lo]));
    *found = CompareMembership(probe, m) == 0;
  }
  return lo;
}

/// Descent child for membership m: the last child whose min key is ≤ m
/// (clamped to 0 when m precedes the whole tree).
Result<size_t> DescentIndex(Pager& pager, const std::vector<ChildEntry>& children,
                            const Membership& m) {
  size_t lo = 0, hi = children.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    XST_ASSIGN_OR_RAISE(Membership key, DecodeEntry(pager, children[mid].key));
    if (CompareMembership(key, m) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

/// Descent child for the element-interval lower edge: the last child whose
/// min key has element < lo_element (a key with element ≥ lo_element roots a
/// subtree entirely ≥ the ghost probe ⟨lo_element, -∞⟩).
Result<size_t> DescentIndexByElement(Pager& pager,
                                     const std::vector<ChildEntry>& children,
                                     const XSet& lo_element) {
  size_t lo = 0, hi = children.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    XST_ASSIGN_OR_RAISE(Membership key, DecodeEntry(pager, children[mid].key));
    if (Compare(key.element, lo_element) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

/// Byte-midpoint split index: entries [0, cut) stay, [cut, n) move right.
/// Both halves keep at least one entry; on an overfull node both halves
/// land at or above kMinNodeFill (see header comment).
size_t SplitIndex(size_t total_bytes, const std::vector<size_t>& costs) {
  size_t acc = 0;
  size_t cut = costs.size() - 1;
  for (size_t i = 0; i + 1 < costs.size(); ++i) {
    acc += costs[i];
    if (acc >= total_bytes / 2) {
      cut = i + 1;
      break;
    }
  }
  return std::max<size_t>(1, cut);
}

std::vector<size_t> LeafCosts(const Node& node) {
  std::vector<size_t> costs;
  costs.reserve(node.members.size());
  for (const std::string& e : node.members) costs.push_back(kSlotBytes + e.size());
  return costs;
}

std::vector<size_t> InternalCosts(const Node& node) {
  std::vector<size_t> costs;
  costs.reserve(node.children.size());
  for (const ChildEntry& e : node.children) {
    costs.push_back(kSlotBytes + VarintLen(e.child) + e.key.size());
  }
  return costs;
}

/// What a recursive mutation reports to its parent.
struct ChildReport {
  std::string min_key;  // the node's min entry payload after the mutation
  bool min_changed = false;
  bool split = false;                     // insert only
  uint32_t right_page = kInvalidPageId;   //   new right sibling
  std::string right_key;                  //   its min entry payload
  bool underflow = false;                 // erase only
};

struct TreeOps {
  Pager& pager;

  Result<bool> InsertRec(uint32_t page_id, const Membership& m,
                         const std::string& entry, uint32_t depth,
                         ChildReport* report);
  Result<bool> EraseRec(uint32_t page_id, const Membership& m, uint32_t depth,
                        ChildReport* report);
  Status FixUnderflow(Node* parent, size_t needy_idx);
};

Result<bool> TreeOps::InsertRec(uint32_t page_id, const Membership& m,
                                const std::string& entry, uint32_t depth,
                                ChildReport* report) {
  if (depth > kMaxHeight) return Corrupt(page_id, "descent exceeds max height");
  Node node;
  XST_RETURN_NOT_OK(ReadNode(pager, page_id, &node));

  if (node.leaf) {
    bool found = false;
    XST_ASSIGN_OR_RAISE(size_t idx, LeafLowerBound(pager, node.members, m, &found));
    if (found) return false;
    node.members.insert(node.members.begin() + idx, entry);
    report->min_changed = idx == 0;
    if (node.used_bytes() <= kNodeCapacity) {
      XST_RETURN_NOT_OK(WriteNode(pager, page_id, node));
      report->min_key = node.members.front();
      return true;
    }
    size_t cut = SplitIndex(node.used_bytes(), LeafCosts(node));
    Node right;
    right.leaf = true;
    right.next = node.next;
    right.members.assign(node.members.begin() + cut, node.members.end());
    XST_ASSIGN_OR_RAISE(uint32_t right_id, AllocateNode(pager, right));
    node.members.resize(cut);
    node.next = right_id;
    XST_RETURN_NOT_OK(WriteNode(pager, page_id, node));
    report->split = true;
    report->right_page = right_id;
    report->right_key = right.members.front();
    report->min_key = node.members.front();
    return true;
  }

  if (node.children.empty()) return Corrupt(page_id, "internal node has no children");
  XST_ASSIGN_OR_RAISE(size_t idx, DescentIndex(pager, node.children, m));
  ChildReport child;
  XST_ASSIGN_OR_RAISE(
      bool inserted, InsertRec(node.children[idx].child, m, entry, depth + 1, &child));
  if (!inserted) return false;
  if (child.min_changed) node.children[idx].key = child.min_key;
  if (child.split) {
    node.children.insert(node.children.begin() + idx + 1,
                         ChildEntry{child.right_page, child.right_key});
  }
  report->min_changed = child.min_changed && idx == 0;
  if (child.min_changed || child.split) {
    if (node.used_bytes() > kNodeCapacity) {
      size_t cut = SplitIndex(node.used_bytes(), InternalCosts(node));
      Node right;
      right.leaf = false;
      right.children.assign(node.children.begin() + cut, node.children.end());
      XST_ASSIGN_OR_RAISE(uint32_t right_id, AllocateNode(pager, right));
      node.children.resize(cut);
      XST_RETURN_NOT_OK(WriteNode(pager, page_id, node));
      report->split = true;
      report->right_page = right_id;
      report->right_key = right.children.front().key;
      report->min_key = node.children.front().key;
      return true;
    }
    XST_RETURN_NOT_OK(WriteNode(pager, page_id, node));
  }
  report->split = false;
  report->min_key = node.children.front().key;
  return true;
}

Status TreeOps::FixUnderflow(Node* parent, size_t needy_idx) {
  // A non-root internal node holds ≥ 2 entries (kMinNodeFill exceeds one
  // maximal entry cost), so a sibling under the same parent always exists.
  XST_CHECK(parent->children.size() >= 2);
  size_t left_idx = needy_idx > 0 ? needy_idx - 1 : needy_idx;
  size_t right_idx = left_idx + 1;
  uint32_t left_id = parent->children[left_idx].child;
  uint32_t right_id = parent->children[right_idx].child;
  Node left, right;
  XST_RETURN_NOT_OK(ReadNode(pager, left_id, &left));
  XST_RETURN_NOT_OK(ReadNode(pager, right_id, &right));
  if (left.leaf != right.leaf) return Corrupt(right_id, "sibling level mismatch");

  if (left.used_bytes() + right.used_bytes() <= kNodeCapacity) {
    // Merge right into left; the right page becomes garbage until Compact.
    if (left.leaf) {
      left.members.insert(left.members.end(), right.members.begin(),
                          right.members.end());
      left.next = right.next;
    } else {
      left.children.insert(left.children.end(), right.children.begin(),
                           right.children.end());
    }
    XST_RETURN_NOT_OK(WriteNode(pager, left_id, left));
    parent->children.erase(parent->children.begin() + right_idx);
    // Refresh the surviving entry's key: when the LEFT side was the emptied
    // node, the merged minimum is the right sibling's old minimum.
    if (left.entry_count() == 0) return Corrupt(left_id, "merge produced empty node");
    parent->children[left_idx].key =
        left.leaf ? left.members.front() : left.children.front().key;
    return Status::OK();
  }

  // Borrow across the boundary until the needy side reaches the floor. The
  // donor stays above the floor: it was too byte-rich to merge, and each
  // move transfers at most one entry past the needy side's deficit.
  bool needy_is_left = needy_idx == left_idx;
  Node& needy = needy_is_left ? left : right;
  Node& donor = needy_is_left ? right : left;
  while (needy.used_bytes() < kMinNodeFill && donor.entry_count() > 1) {
    if (left.leaf) {
      if (needy_is_left) {
        needy.members.push_back(std::move(donor.members.front()));
        donor.members.erase(donor.members.begin());
      } else {
        needy.members.insert(needy.members.begin(), std::move(donor.members.back()));
        donor.members.pop_back();
      }
    } else {
      if (needy_is_left) {
        needy.children.push_back(std::move(donor.children.front()));
        donor.children.erase(donor.children.begin());
      } else {
        needy.children.insert(needy.children.begin(),
                              std::move(donor.children.back()));
        donor.children.pop_back();
      }
    }
  }
  XST_RETURN_NOT_OK(WriteNode(pager, left_id, left));
  XST_RETURN_NOT_OK(WriteNode(pager, right_id, right));
  // Borrowing moves entries across the boundary, so refresh both keys (the
  // left one matters when the left side was the emptied node).
  if (left.entry_count() == 0 || right.entry_count() == 0) {
    return Corrupt(left_id, "borrow produced empty node");
  }
  parent->children[left_idx].key =
      left.leaf ? left.members.front() : left.children.front().key;
  parent->children[right_idx].key =
      right.leaf ? right.members.front() : right.children.front().key;
  return Status::OK();
}

Result<bool> TreeOps::EraseRec(uint32_t page_id, const Membership& m, uint32_t depth,
                               ChildReport* report) {
  if (depth > kMaxHeight) return Corrupt(page_id, "descent exceeds max height");
  Node node;
  XST_RETURN_NOT_OK(ReadNode(pager, page_id, &node));

  if (node.leaf) {
    bool found = false;
    XST_ASSIGN_OR_RAISE(size_t idx, LeafLowerBound(pager, node.members, m, &found));
    if (!found) return false;
    node.members.erase(node.members.begin() + idx);
    XST_RETURN_NOT_OK(WriteNode(pager, page_id, node));
    report->min_changed = idx == 0;
    report->underflow = node.used_bytes() < kMinNodeFill;
    if (!node.members.empty()) report->min_key = node.members.front();
    return true;
  }

  if (node.children.empty()) return Corrupt(page_id, "internal node has no children");
  XST_ASSIGN_OR_RAISE(size_t idx, DescentIndex(pager, node.children, m));
  ChildReport child;
  XST_ASSIGN_OR_RAISE(bool erased,
                      EraseRec(node.children[idx].child, m, depth + 1, &child));
  if (!erased) return false;
  const std::string old_front_key = node.children.front().key;
  if (child.min_changed && !child.min_key.empty()) {
    node.children[idx].key = child.min_key;
  }
  if (child.underflow) {
    XST_RETURN_NOT_OK(FixUnderflow(&node, idx));
  }
  if (child.min_changed || child.underflow) {
    XST_RETURN_NOT_OK(WriteNode(pager, page_id, node));
  }
  // Byte-compare the front key: canonical encodings make equal memberships
  // byte-equal, so this over-approximates at worst (a re-encoded overflow
  // ref), which only costs a harmless parent key rewrite.
  report->min_changed = node.children.front().key != old_front_key;
  report->underflow = node.used_bytes() < kMinNodeFill;
  report->min_key = node.children.front().key;
  return true;
}

}  // namespace

Result<BTreeInfo> BTree::Build(Pager& pager, std::span<const Membership> members) {
  XST_DCHECK(IsCanonicalMemberList(members));
  // Encode every entry first (overflow chains are written as encountered),
  // then pack levels bottom-up. Each level chunks greedily by bytes and
  // rebalances the last two groups so no non-root node lands under the
  // fill floor.
  struct Pending {
    uint32_t page = kInvalidPageId;
    std::string key;
  };
  std::vector<std::string> entries;
  entries.reserve(members.size());
  for (const Membership& m : members) {
    XST_ASSIGN_OR_RAISE(std::string entry, EncodeEntry(pager, m));
    entries.push_back(std::move(entry));
  }

  // Group a level's entries by byte budget; returns group boundaries.
  auto chunk = [](const std::vector<size_t>& costs) {
    std::vector<size_t> bounds;  // exclusive end of each group
    size_t acc = 0;
    for (size_t i = 0; i < costs.size(); ++i) {
      if (acc > 0 && acc + costs[i] > kNodeCapacity) {
        bounds.push_back(i);
        acc = 0;
      }
      acc += costs[i];
    }
    bounds.push_back(costs.size());
    // Rebalance the tail: move entries from the penultimate group until the
    // last one reaches the floor (the penultimate was near-full, so it
    // stays comfortably above it).
    if (bounds.size() >= 2) {
      size_t last_start = bounds[bounds.size() - 2];
      size_t last_bytes = 0;
      for (size_t i = last_start; i < costs.size(); ++i) last_bytes += costs[i];
      while (last_bytes < kMinNodeFill && last_start > 0 &&
             (bounds.size() < 3 || last_start > bounds[bounds.size() - 3] + 1)) {
        --last_start;
        last_bytes += costs[last_start];
      }
      bounds[bounds.size() - 2] = last_start;
      if (last_start == 0) bounds.erase(bounds.begin());
    }
    return bounds;
  };

  BTreeInfo info;
  info.member_count = members.size();

  // Leaf level.
  std::vector<size_t> costs;
  costs.reserve(entries.size());
  for (const std::string& e : entries) costs.push_back(kSlotBytes + e.size());
  std::vector<size_t> bounds = costs.empty() ? std::vector<size_t>{0} : chunk(costs);
  std::vector<uint32_t> pages(bounds.size());
  for (size_t g = 0; g < bounds.size(); ++g) {
    XST_ASSIGN_OR_RAISE(PageRef page, pager.AllocatePage());
    pages[g] = page.id();
  }
  std::vector<Pending> level(bounds.size());
  size_t start = 0;
  for (size_t g = 0; g < bounds.size(); ++g) {
    Node leaf;
    leaf.leaf = true;
    leaf.next = g + 1 < pages.size() ? pages[g + 1] : kInvalidPageId;
    leaf.members.assign(entries.begin() + start, entries.begin() + bounds[g]);
    XST_RETURN_NOT_OK(WriteNode(pager, pages[g], leaf));
    level[g].page = pages[g];
    if (!leaf.members.empty()) level[g].key = leaf.members.front();
    start = bounds[g];
  }
  info.height = 1;

  // Internal levels until a single root remains.
  while (level.size() > 1) {
    costs.clear();
    for (const Pending& p : level) {
      costs.push_back(kSlotBytes + VarintLen(p.page) + p.key.size());
    }
    bounds = chunk(costs);
    std::vector<Pending> upper(bounds.size());
    start = 0;
    for (size_t g = 0; g < bounds.size(); ++g) {
      Node internal;
      internal.leaf = false;
      for (size_t i = start; i < bounds[g]; ++i) {
        internal.children.push_back(ChildEntry{level[i].page, level[i].key});
      }
      XST_ASSIGN_OR_RAISE(uint32_t id, AllocateNode(pager, internal));
      upper[g].page = id;
      upper[g].key = internal.children.front().key;
      start = bounds[g];
    }
    level = std::move(upper);
    ++info.height;
  }
  info.root = level.front().page;
  return info;
}

Result<bool> BTree::Insert(const Membership& m) {
  TreeOps ops{*pager_};
  XST_ASSIGN_OR_RAISE(std::string entry, EncodeEntry(*pager_, m));
  ChildReport report;
  XST_ASSIGN_OR_RAISE(bool inserted, ops.InsertRec(info_.root, m, entry, 0, &report));
  if (!inserted) return false;
  if (report.split) {
    Node root;
    root.leaf = false;
    root.children.push_back(ChildEntry{info_.root, report.min_key});
    root.children.push_back(ChildEntry{report.right_page, report.right_key});
    XST_ASSIGN_OR_RAISE(info_.root, AllocateNode(*pager_, root));
    ++info_.height;
  }
  ++info_.member_count;
  return true;
}

Result<bool> BTree::Erase(const Membership& m) {
  TreeOps ops{*pager_};
  ChildReport report;
  XST_ASSIGN_OR_RAISE(bool erased, ops.EraseRec(info_.root, m, 0, &report));
  if (!erased) return false;
  --info_.member_count;
  // Collapse single-child internal roots (the mirror of root growth); the
  // abandoned root pages are garbage until Compact.
  for (uint32_t guard = 0; guard <= kMaxHeight; ++guard) {
    Node root;
    XST_RETURN_NOT_OK(ReadNode(*pager_, info_.root, &root));
    if (root.leaf || root.children.size() != 1) break;
    info_.root = root.children.front().child;
    --info_.height;
  }
  return true;
}

Result<bool> BTree::Contains(const Membership& m) const {
  uint32_t page_id = info_.root;
  for (uint32_t depth = 0; depth <= kMaxHeight; ++depth) {
    Node node;
    XST_RETURN_NOT_OK(ReadNode(*pager_, page_id, &node));
    if (node.leaf) {
      bool found = false;
      XST_RETURN_NOT_OK(LeafLowerBound(*pager_, node.members, m, &found).status());
      return found;
    }
    if (node.children.empty()) return Corrupt(page_id, "internal node has no children");
    XST_ASSIGN_OR_RAISE(size_t idx, DescentIndex(*pager_, node.children, m));
    page_id = node.children[idx].child;
  }
  return Corrupt(info_.root, "descent exceeds max height");
}

Result<BTreeCursorPos> BTree::SeekFirst() const {
  uint32_t page_id = info_.root;
  for (uint32_t depth = 0; depth <= kMaxHeight; ++depth) {
    Node node;
    XST_RETURN_NOT_OK(ReadNode(*pager_, page_id, &node));
    if (node.leaf) return BTreeCursorPos{page_id, 1};
    if (node.children.empty()) return Corrupt(page_id, "internal node has no children");
    page_id = node.children.front().child;
  }
  return Corrupt(info_.root, "descent exceeds max height");
}

Result<BTreeCursorPos> BTree::SeekElement(const XSet& lo) const {
  uint32_t page_id = info_.root;
  for (uint32_t depth = 0; depth <= kMaxHeight; ++depth) {
    Node node;
    XST_RETURN_NOT_OK(ReadNode(*pager_, page_id, &node));
    if (node.leaf) {
      // First entry whose element is ≥ lo; past-the-end positions resolve
      // through the leaf chain on the first ReadLeafBatch.
      size_t a = 0, b = node.members.size();
      while (a < b) {
        size_t mid = a + (b - a) / 2;
        XST_ASSIGN_OR_RAISE(Membership probe, DecodeEntry(*pager_, node.members[mid]));
        if (Compare(probe.element, lo) < 0) {
          a = mid + 1;
        } else {
          b = mid;
        }
      }
      return BTreeCursorPos{page_id, static_cast<uint32_t>(a) + 1};
    }
    if (node.children.empty()) return Corrupt(page_id, "internal node has no children");
    XST_ASSIGN_OR_RAISE(size_t idx, DescentIndexByElement(*pager_, node.children, lo));
    page_id = node.children[idx].child;
  }
  return Corrupt(info_.root, "descent exceeds max height");
}

Result<bool> BTree::ReadLeafBatch(BTreeCursorPos* pos, const XSet* hi_element,
                                  std::vector<Membership>* out) const {
  if (pos->leaf == kInvalidPageId) return false;
  Node node;
  XST_RETURN_NOT_OK(ReadNode(*pager_, pos->leaf, &node));
  if (!node.leaf) return Corrupt(pos->leaf, "cursor landed on an internal node");
  for (size_t i = pos->slot >= 1 ? pos->slot - 1 : 0; i < node.members.size(); ++i) {
    XST_ASSIGN_OR_RAISE(Membership m, DecodeEntry(*pager_, node.members[i]));
    if (hi_element != nullptr && Compare(m.element, *hi_element) > 0) {
      pos->leaf = kInvalidPageId;
      return true;
    }
    out->push_back(std::move(m));
  }
  pos->leaf = node.next;
  pos->slot = 1;
  return true;
}

Status BTree::Validate() const {
  return ValidateBTree(*pager_, info_);
}

Status ValidateBTree(Pager& pager, const BTreeInfo& info) {
  if (info.root == kInvalidPageId || info.root >= pager.page_count()) {
    return Status::Corruption("btree: root page " + std::to_string(info.root) +
                              " out of range");
  }
  if (info.height == 0 || info.height > kMaxHeight) {
    return Status::Corruption("btree: height " + std::to_string(info.height) +
                              " out of range");
  }
  std::unordered_set<uint32_t> visited;
  std::vector<uint32_t> leaves_in_order;
  uint64_t count = 0;

  // Recursive walk carrying the subtree's depth; returns (min, max) decoded
  // memberships through out-params. Declared as a self-capturing lambda so
  // the whole check stays in this function.
  struct Walker {
    Pager& pager;
    const BTreeInfo& info;
    std::unordered_set<uint32_t>& visited;
    std::vector<uint32_t>& leaves_in_order;
    uint64_t& count;

    Status Walk(uint32_t page_id, uint32_t depth, bool is_root, Membership* min,
                Membership* max, bool* empty) {
      if (!visited.insert(page_id).second) {
        return Corrupt(page_id, "page visited twice (cycle or shared child)");
      }
      Node node;
      XST_RETURN_NOT_OK(ReadNode(pager, page_id, &node));
      const bool expect_leaf = depth + 1 == info.height;
      if (node.leaf != expect_leaf) {
        return Corrupt(page_id, node.leaf ? "leaf above the leaf level"
                                          : "internal node at the leaf level");
      }
      if (!is_root) {
        if (node.entry_count() == 0) return Corrupt(page_id, "empty non-root node");
        if (node.used_bytes() < kMinNodeFill) {
          return Corrupt(page_id, "node below the byte fill floor (" +
                                      std::to_string(node.used_bytes()) + " < " +
                                      std::to_string(kMinNodeFill) + ")");
        }
      }
      if (node.used_bytes() > kNodeCapacity) {
        return Corrupt(page_id, "node over page capacity");
      }
      *empty = node.entry_count() == 0;
      if (node.leaf) {
        leaves_in_order.push_back(page_id);
        count += node.members.size();
        Membership prev;
        for (size_t i = 0; i < node.members.size(); ++i) {
          XST_ASSIGN_OR_RAISE(Membership m, DecodeEntry(pager, node.members[i]));
          if (i > 0 && CompareMembership(prev, m) >= 0) {
            return Corrupt(page_id, "leaf entries out of order");
          }
          if (i == 0) *min = m;
          prev = std::move(m);
        }
        if (!node.members.empty()) *max = prev;
        return Status::OK();
      }
      Membership prev_key;
      for (size_t i = 0; i < node.children.size(); ++i) {
        XST_ASSIGN_OR_RAISE(Membership key, DecodeEntry(pager, node.children[i].key));
        if (i > 0 && CompareMembership(prev_key, key) >= 0) {
          return Corrupt(page_id, "internal keys out of order");
        }
        Membership child_min, child_max;
        bool child_empty = false;
        XST_RETURN_NOT_OK(Walk(node.children[i].child, depth + 1, false, &child_min,
                               &child_max, &child_empty));
        if (child_empty) return Corrupt(node.children[i].child, "empty child");
        if (CompareMembership(child_min, key) != 0) {
          return Corrupt(page_id, "key " + std::to_string(i) +
                                      " is not its child's exact minimum");
        }
        if (i > 0 && CompareMembership(prev_key, child_min) >= 0) {
          return Corrupt(page_id, "child subtree overlaps previous key");
        }
        if (i == 0) *min = child_min;
        *max = child_max;
        prev_key = std::move(key);
      }
      return Status::OK();
    }
  };

  Walker walker{pager, info, visited, leaves_in_order, count};
  Membership min, max;
  bool empty = false;
  XST_RETURN_NOT_OK(walker.Walk(info.root, 0, /*is_root=*/true, &min, &max, &empty));

  if (count != info.member_count) {
    return Status::Corruption("btree: member count mismatch: tree has " +
                              std::to_string(count) + ", catalog says " +
                              std::to_string(info.member_count));
  }
  // The leaf chain must thread exactly the in-order leaves and terminate.
  for (size_t i = 0; i < leaves_in_order.size(); ++i) {
    Node leaf;
    XST_RETURN_NOT_OK(ReadNode(pager, leaves_in_order[i], &leaf));
    uint32_t expect =
        i + 1 < leaves_in_order.size() ? leaves_in_order[i + 1] : kInvalidPageId;
    if (leaf.next != expect) {
      return Corrupt(leaves_in_order[i],
                     "leaf chain mismatch: next=" + std::to_string(leaf.next) +
                         ", expected " + std::to_string(expect));
    }
  }
  return Status::OK();
}

}  // namespace xst
