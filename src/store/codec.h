// Binary codec for extended sets.
//
// The 1977 thesis is that stored data *is* a set — so the storage layer
// serializes XSet values directly, with no record-format detour. The
// encoding is a compact recursive tag/varint format:
//
//   value   := tag payload
//   tag     := 0x00 ∅ | 0x01 int | 0x02 symbol | 0x03 string | 0x04 set
//   int     := zigzag varint
//   symbol  := varint length + bytes        (same for string)
//   set     := varint member count + (element value, scope value)*
//
// ∅ has its own tag because it is by far the most common scope. Encoded
// bytes are deterministic (canonical member order), so equal sets have equal
// encodings — the property the set store's checksums and dedup rely on.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/core/xset.h"

namespace xst {

/// \brief Appends the canonical encoding of `s` to `out`.
void EncodeXSet(const XSet& s, std::string* out);

/// \brief Convenience: the canonical encoding as a fresh buffer.
std::string EncodeXSetToString(const XSet& s);

/// \brief Decodes one value from `data` starting at *offset; advances
/// *offset past it. Corruption on malformed input.
Result<XSet> DecodeXSet(std::string_view data, size_t* offset);

/// \brief Decodes a buffer that must contain exactly one value.
Result<XSet> DecodeXSetWhole(std::string_view data);

// Exposed for the page layer and tests.
void PutVarint(uint64_t v, std::string* out);
bool GetVarint(std::string_view data, size_t* offset, uint64_t* out);
uint64_t ZigZagEncode(int64_t v);
int64_t ZigZagDecode(uint64_t v);

}  // namespace xst
