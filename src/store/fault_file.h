// FaultFile: a File that fails on schedule.
//
// Wraps a real File and injects one fault per plan: the k-th read, write,
// or flush (0-based, counted across the file's lifetime). Write and flush
// faults model a dying device and are STICKY — once the fault fires, every
// subsequent write and flush also fails, so nothing written "after the
// crash point" can quietly heal the file (the pager's best-effort teardown
// flush included). Read faults are transient: only the scheduled read
// fails, which lets a test verify that resident state survives and the
// operation is retryable.
//
// A failing write can fail three ways, covering the classic torn-page
// taxonomy:
//   kFailCleanly  nothing reaches the device
//   kShortWrite   a prefix (1/3) lands, the rest of the range keeps its old
//                 bytes (or stays a hole)
//   kTornWrite    half the page lands — the canonical torn page
//
// The plan and its counters live in a shared FaultState owned jointly by
// the test and the FaultFile(s), so a test can inspect trigger state after
// the store (and therefore the file) has been destroyed, and so one
// schedule spans every file a scenario opens (Compact opens two).

#pragma once

#include <memory>

#include "src/store/file.h"

namespace xst {

struct FaultState {
  enum class WriteFault { kFailCleanly, kShortWrite, kTornWrite };

  // Schedule: 0-based index of the operation to fail; -1 = never.
  int64_t fail_read = -1;
  int64_t fail_write = -1;
  int64_t fail_flush = -1;
  WriteFault write_fault = WriteFault::kFailCleanly;

  // Counters (reads/writes/flushes attempted so far) and outcome.
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t flushes = 0;
  bool triggered = false;      ///< did any scheduled fault fire?
  bool device_failed = false;  ///< sticky: write/flush fault has fired
};

class FaultFile : public File {
 public:
  FaultFile(std::unique_ptr<File> base, std::shared_ptr<FaultState> state)
      : base_(std::move(base)), state_(std::move(state)) {}

  Result<uint64_t> Size() override { return base_->Size(); }
  Status ReadAt(uint64_t offset, char* dst, size_t n) override;
  Status WriteAt(uint64_t offset, const char* src, size_t n) override;
  Status Flush() override;

 private:
  std::unique_ptr<File> base_;
  std::shared_ptr<FaultState> state_;
};

/// \brief A FileFactory that wraps every opened file in a FaultFile sharing
/// `state`.
FileFactory FaultFileFactory(std::shared_ptr<FaultState> state);

}  // namespace xst
