// FaultFile: a File that fails on schedule.
//
// Wraps a real File and injects one fault per plan: the k-th read, write,
// or flush (0-based, counted across the file's lifetime). Write and flush
// faults model a dying device and are STICKY — once the fault fires, every
// subsequent write and flush also fails, so nothing written "after the
// crash point" can quietly heal the file (the pager's best-effort teardown
// flush included); set `transient` for the one-shot variant that models a
// momentary error on an otherwise healthy device. Read faults are always
// transient: only the scheduled read fails, which lets a test verify that
// resident state survives and the operation is retryable.
//
// A failing write can fail three ways, covering the classic torn-page
// taxonomy:
//   kFailCleanly  nothing reaches the device
//   kShortWrite   a prefix (1/3) lands, the rest of the range keeps its old
//                 bytes (or stays a hole)
//   kTornWrite    half the page lands — the canonical torn page
//
// A fourth schedule, `fail_write_at_byte`, kills the device at an exact
// byte offset of the cumulative write stream: the write that crosses the
// boundary lands precisely the prefix up to it, then everything after
// fails. Sweeping that offset over a WAL's append stream simulates a crash
// at every byte of the log — the primitive beneath the crash-point
// recovery matrix in tests/wal_recovery_test.cc.
//
// `path_filter` scopes a schedule to files whose path contains the
// substring (e.g. ".wal"), so a log-offset sweep is not perturbed by
// main-file traffic; counters advance only for matching files.
// `device_failed` stays global on purpose — a dead device is dead for
// every file it backs.
//
// The plan and its counters live in a shared FaultState owned jointly by
// the test and the FaultFile(s), so a test can inspect trigger state after
// the store (and therefore the file) has been destroyed, and so one
// schedule spans every file a scenario opens (Compact opens two).

#pragma once

#include <memory>
#include <string>

#include "src/store/file.h"

namespace xst {

struct FaultState {
  enum class WriteFault { kFailCleanly, kShortWrite, kTornWrite };

  // Schedule: 0-based index of the operation to fail; -1 = never.
  // Truncate counts as a write (it mutates the device) and always fails
  // cleanly when scheduled.
  int64_t fail_read = -1;
  int64_t fail_write = -1;
  int64_t fail_flush = -1;
  WriteFault write_fault = WriteFault::kFailCleanly;

  // Crash-at-byte-offset: once the cumulative write stream on matching
  // files reaches this many bytes, the device dies. The boundary write
  // lands exactly its prefix up to the offset; -1 = never.
  int64_t fail_write_at_byte = -1;

  // One-shot mode: a scheduled fail_write / fail_flush fault (truncate
  // included) fires once WITHOUT killing the device — the next operation
  // succeeds again. Models a transient I/O error (an EINTR'd ftruncate, a
  // momentary ENOSPC) rather than a dying device: the shape that exposes
  // desync bugs where in-memory state advances past a failed write and a
  // healed device then happily persists records recovery must reject.
  // fail_write_at_byte stays sticky regardless — a crash point is a crash.
  bool transient = false;

  // Substring filter on the opened path; empty = schedule applies to every
  // file. Non-matching files never trigger faults and never advance the
  // counters, but still observe a globally dead device.
  std::string path_filter;

  // Counters (reads/writes/flushes attempted so far on matching files,
  // bytes actually landed by their writes) and outcome.
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t flushes = 0;
  int64_t bytes_written = 0;
  bool triggered = false;      ///< did any scheduled fault fire?
  bool device_failed = false;  ///< sticky: write/flush fault has fired
};

class FaultFile : public File {
 public:
  FaultFile(std::unique_ptr<File> base, std::shared_ptr<FaultState> state,
            std::string path = "")
      : base_(std::move(base)), state_(std::move(state)), path_(std::move(path)) {}

  Result<uint64_t> Size() override { return base_->Size(); }
  Status ReadAt(uint64_t offset, char* dst, size_t n) override;
  Status WriteAt(uint64_t offset, const char* src, size_t n) override;
  Status Flush() override;
  Status Truncate(uint64_t size) override;

 private:
  bool Scheduled() const {
    return state_->path_filter.empty() ||
           path_.find(state_->path_filter) != std::string::npos;
  }

  std::unique_ptr<File> base_;
  std::shared_ptr<FaultState> state_;
  std::string path_;
};

/// \brief A FileFactory that wraps every opened file in a FaultFile sharing
/// `state`.
FileFactory FaultFileFactory(std::shared_ptr<FaultState> state);

}  // namespace xst
