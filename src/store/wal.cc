#include "src/store/wal.h"

#include <cstring>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/macros.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/codec.h"

namespace xst {

namespace {

// "xstwal09", little-endian. Also the header checksum seed, and (combined
// with epoch and LSN) the record checksum seed — a record can only validate
// in the segment generation and log position it was written for.
constexpr uint64_t kWalMagic = 0x39306c6177747378ULL;
constexpr uint32_t kWalVersion = 1;

// Header: magic u64 | version u32 | pad u32 | epoch u64 | base LSN u64 |
// crc u64 (over the first 32 bytes, seeded with the magic).
constexpr size_t kWalHeaderSize = 40;

// Frame: body length u32 | lsn u64 | crc u64 | body.
constexpr size_t kFrameHeaderSize = 20;

// Body: type u8 | txn id varint | payload.
constexpr uint8_t kPageImage = 1;  // payload: page id varint + full image
constexpr uint8_t kCommit = 2;     // payload: empty

// A body is one page image plus small framing; anything larger is torn.
constexpr uint64_t kMaxRecordBody = kPageSize + 32;

void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, sizeof v); }
void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, sizeof v); }

uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}

uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}

void PutFixed32(uint32_t v, std::string* out) {
  char buf[sizeof v];
  EncodeFixed32(buf, v);
  out->append(buf, sizeof v);
}

void PutFixed64(uint64_t v, std::string* out) {
  char buf[sizeof v];
  EncodeFixed64(buf, v);
  out->append(buf, sizeof v);
}

uint64_t RecordSeed(uint64_t epoch, uint64_t lsn) {
  return HashCombine(HashCombine(kWalMagic, epoch), lsn);
}

// Process-wide WAL metrics (see wal.h internal for the names).
obs::Counter& AppendsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kWalAppendsCounter);
  return c;
}
obs::Counter& CommitsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kWalCommitsCounter);
  return c;
}
obs::Histogram& BatchSizeHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      internal::kWalBatchSizeHistogram);
  return h;
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path, WalOptions options) {
  Result<std::unique_ptr<File>> file =
      options.file_factory ? options.file_factory(path) : StdioFile::Open(path);
  if (!file.ok()) return file.status().WithContext("wal " + path);
  std::unique_ptr<Wal> wal(new Wal(std::move(*file), path));
  MutexLock lock(&wal->mu_);
  XST_ASSIGN_OR_RAISE(uint64_t size, wal->file_->Size());
  bool valid_header = false;
  if (size >= kWalHeaderSize) {
    char hdr[kWalHeaderSize];
    Status st = wal->file_->ReadAt(0, hdr, kWalHeaderSize);
    if (!st.ok()) return st.WithContext("wal header " + path);
    if (DecodeFixed64(hdr) == kWalMagic && DecodeFixed32(hdr + 8) == kWalVersion &&
        DecodeFixed64(hdr + 32) == HashBytes(hdr, 32, kWalMagic)) {
      valid_header = true;
      wal->epoch_ = DecodeFixed64(hdr + 16);
      wal->base_lsn_ = DecodeFixed64(hdr + 24);
      wal->last_checkpoint_lsn_ = wal->base_lsn_;
    }
  }
  if (!valid_header) {
    // Fresh log, or a crash mid-creation / mid-reset. A header is only ever
    // written at moments when the main file needs nothing from the log
    // (segment creation and the post-checkpoint reset, both after the main
    // file is self-contained), so starting over empty loses nothing.
    wal->epoch_ = 1;
    wal->base_lsn_ = 0;
    XST_RETURN_NOT_OK(wal->InitSegment());
    return wal;
  }
  XST_RETURN_NOT_OK(
      wal->ScanCommittedPrefix(&wal->recovered_, UINT64_MAX));
  wal->recovered_count_ = wal->recovered_.size();
  return wal;
}

// The segment-lifecycle helpers below (fresh-segment init, header check,
// recovery scan, tail truncation) perform file I/O while Wal::mu_ is held.
// That is the group-commit design, not an oversight: the WAL file is
// exclusively owned by this Wal, these are cold paths (open / reset /
// recovery), and the store's optimistic read path never touches Wal::mu_ —
// hence the per-line blocking-under-latch allowances.
Status Wal::WriteFreshSegment(uint64_t epoch, uint64_t base_lsn) {
  Status st = file_->Truncate(0);  // xst-lint: allow(blocking-under-latch)
  if (!st.ok()) return st.WithContext("wal " + path_);
  char hdr[kWalHeaderSize] = {};
  EncodeFixed64(hdr, kWalMagic);
  EncodeFixed32(hdr + 8, kWalVersion);
  EncodeFixed64(hdr + 16, epoch);
  EncodeFixed64(hdr + 24, base_lsn);
  EncodeFixed64(hdr + 32, HashBytes(hdr, 32, kWalMagic));
  st = file_->WriteAt(0, hdr, kWalHeaderSize);  // xst-lint: allow(blocking-under-latch)
  if (!st.ok()) return st.WithContext("wal " + path_);
  st = file_->Flush();  // xst-lint: allow(blocking-under-latch)
  if (!st.ok()) return st.WithContext("wal " + path_);
  return Status::OK();
}

Status Wal::InitSegment() {
  XST_RETURN_NOT_OK(WriteFreshSegment(epoch_, base_lsn_));
  file_bytes_ = kWalHeaderSize;
  appended_lsn_ = base_lsn_;
  durable_lsn_ = base_lsn_;
  resident_.clear();
  return Status::OK();
}

Status Wal::CheckSegmentHeader() {
  XST_ASSIGN_OR_RAISE(uint64_t size, file_->Size());  // xst-lint: allow(blocking-under-latch)
  char hdr[kWalHeaderSize];
  if (size >= kWalHeaderSize) {
    XST_RETURN_NOT_OK(file_->ReadAt(0, hdr, kWalHeaderSize).WithContext("wal " + path_));  // xst-lint: allow(blocking-under-latch)
  }
  if (size < kWalHeaderSize || DecodeFixed64(hdr) != kWalMagic ||
      DecodeFixed32(hdr + 8) != kWalVersion ||
      DecodeFixed64(hdr + 32) != HashBytes(hdr, 32, kWalMagic) ||
      DecodeFixed64(hdr + 16) != epoch_ || DecodeFixed64(hdr + 24) != base_lsn_) {
    return Status::Corruption("wal " + path_ +
                              ": on-disk segment header does not match the "
                              "in-memory generation (interrupted reset?)");
  }
  return Status::OK();
}

Status Wal::ScanCommittedPrefix(std::map<uint32_t, std::string>* out,
                                uint64_t limit_lsn) {
  XST_ASSIGN_OR_RAISE(uint64_t size, file_->Size());  // xst-lint: allow(blocking-under-latch)
  // Per-txn staging: images count only once their commit record is seen.
  std::map<uint64_t, std::map<uint32_t, std::string>> staged;
  uint64_t off = kWalHeaderSize;
  uint64_t lsn = base_lsn_;
  uint64_t last_commit = base_lsn_;
  uint64_t committed_end = kWalHeaderSize;
  uint64_t next_txn = txn_id_;
  std::string body;
  while (off + kFrameHeaderSize <= size) {
    char fh[kFrameHeaderSize];
    Status st = file_->ReadAt(off, fh, kFrameHeaderSize);  // xst-lint: allow(blocking-under-latch)
    if (!st.ok()) return st.WithContext("wal " + path_);
    const uint32_t len = DecodeFixed32(fh);
    const uint64_t rlsn = DecodeFixed64(fh + 4);
    const uint64_t crc = DecodeFixed64(fh + 12);
    // The committed prefix ends at the first frame that fails any check:
    // implausible length, truncated body, a break in the LSN chain, or a
    // checksum mismatch — all the shapes a torn tail can take.
    if (len > kMaxRecordBody) break;
    if (off + kFrameHeaderSize + len > size) break;
    if (rlsn != lsn + 1) break;
    if (rlsn > limit_lsn) break;  // beyond the durable horizon: never acked
    body.resize(len);
    st = file_->ReadAt(off + kFrameHeaderSize, body.data(), len);  // xst-lint: allow(blocking-under-latch)
    if (!st.ok()) return st.WithContext("wal " + path_);
    if (HashBytes(body.data(), len, RecordSeed(epoch_, rlsn)) != crc) break;
    if (body.empty()) break;
    size_t p = 0;
    const uint8_t type = static_cast<uint8_t>(body[p++]);
    uint64_t txn = 0;
    if (!GetVarint(body, &p, &txn)) break;
    if (type == kPageImage) {
      uint64_t page = 0;
      if (!GetVarint(body, &p, &page)) break;
      if (body.size() - p != kPageSize || page > UINT32_MAX) break;
      staged[txn][static_cast<uint32_t>(page)] = body.substr(p);
    } else if (type == kCommit) {
      auto it = staged.find(txn);
      if (it != staged.end()) {
        for (auto& [pg, img] : it->second) (*out)[pg] = std::move(img);
        staged.erase(it);
      }
      last_commit = rlsn;
      committed_end = off + kFrameHeaderSize + len;
    } else {
      break;
    }
    if (txn + 1 > next_txn) next_txn = txn + 1;
    lsn = rlsn;
    off += kFrameHeaderSize + len;
  }
  // Appends resume right after the last commit record; valid-but-unsealed
  // (or never-fsynced) records past it belong to transactions that were
  // never acknowledged. The tail MUST go before appends continue: a new
  // record chain written over a same-epoch tail could, byte sizes aligning,
  // splice into the old records at a crash-recovery scan. An untrimmable
  // tail therefore poisons the log — reads keep working, appends report the
  // truncation failure until a reopen gets a working device.
  if (size > committed_end) {
    Status trunc = file_->Truncate(committed_end);  // xst-lint: allow(blocking-under-latch)
    if (!trunc.ok()) {
      device_failed_ = true;
      flush_error_ = trunc.WithContext("wal tail truncation " + path_);
    }
  }
  appended_lsn_ = last_commit;
  durable_lsn_ = last_commit;
  file_bytes_ = committed_end;
  txn_id_ = next_txn;
  return Status::OK();
}

std::map<uint32_t, std::string> Wal::TakeRecoveredImages() {
  MutexLock lock(&mu_);
  return std::move(recovered_);
}

size_t Wal::recovered_image_count() const {
  MutexLock lock(&mu_);
  return recovered_count_;
}

void Wal::BeginTxn() {
  MutexLock lock(&mu_);
  XST_DCHECK(!txn_open_);
  XST_DCHECK(staged_.empty());
  txn_open_ = true;
}

void Wal::AppendRecord(uint8_t type, uint64_t txn_id, std::string_view payload) {
  std::string body;
  body.reserve(1 + 10 + payload.size());
  body.push_back(static_cast<char>(type));
  PutVarint(txn_id, &body);
  body.append(payload);
  const uint64_t lsn = ++appended_lsn_;
  const uint64_t crc = HashBytes(body.data(), body.size(), RecordSeed(epoch_, lsn));
  PutFixed32(static_cast<uint32_t>(body.size()), &buffer_);
  PutFixed64(lsn, &buffer_);
  PutFixed64(crc, &buffer_);
  buffer_.append(body);
  AppendsCounter().Increment();
}

Status Wal::LogPageImage(uint32_t page_id, std::string image) {
  XST_DCHECK(image.size() == kPageSize);
  MutexLock lock(&mu_);
  XST_DCHECK(txn_open_);
  if (device_failed_) return flush_error_.WithContext("wal append");
  std::string payload;
  payload.reserve(5 + image.size());
  PutVarint(page_id, &payload);
  payload.append(image);
  AppendRecord(kPageImage, txn_id_, payload);
  staged_[page_id] = std::move(image);
  return Status::OK();
}

Result<uint64_t> Wal::AppendCommit() {
  MutexLock lock(&mu_);
  XST_DCHECK(txn_open_);
  if (device_failed_) {
    staged_.clear();
    txn_open_ = false;
    ++txn_id_;
    return flush_error_.WithContext("wal commit");
  }
  AppendRecord(kCommit, txn_id_, std::string_view());
  for (auto& [pg, img] : staged_) resident_[pg] = std::move(img);
  staged_.clear();
  txn_open_ = false;
  ++txn_id_;
  ++buffered_commits_;
  CommitsCounter().Increment();
  return appended_lsn_;
}

void Wal::AbortTxn() {
  MutexLock lock(&mu_);
  // The aborted txn's records may already sit in the buffer (or even on
  // disk, spilled under pool pressure); without a commit record they are
  // inert — replay never applies them.
  staged_.clear();
  txn_open_ = false;
  ++txn_id_;
}

Status Wal::WriteBatch(const FlushJob& job) {
  XST_TRACE_SPAN("wal.flush");
  if (!job.batch.empty()) {
    Status st = file_->WriteAt(job.offset, job.batch.data(), job.batch.size());
    if (!st.ok()) return st.WithContext("wal " + path_);
  }
  Status st = file_->Flush();
  if (!st.ok()) return st.WithContext("wal " + path_);
  if (job.commits > 0) BatchSizeHistogram().Record(job.commits);
  return Status::OK();
}

Status Wal::WaitDurable(uint64_t lsn) {
  for (;;) {
    FlushJob job;
    {
      MutexLock lock(&mu_);
      // Park while a leader's flush is in flight; it may cover our LSN.
      while (flusher_active_ && durable_lsn_ < lsn && !device_failed_) {
        cv_.Wait(lock);
      }
      if (durable_lsn_ >= lsn) return Status::OK();
      if (device_failed_) {
        return flush_error_.WithContext("wal commit lsn " + std::to_string(lsn));
      }
      if (appended_lsn_ < lsn) {
        // A failed flush + RecoverResidentFromDisk rolled the log back past
        // our commit while we were parked; leading a flush now would never
        // reach `lsn` (the append cursor is behind it forever).
        return Status::IOError("wal commit lsn " + std::to_string(lsn) +
                               " was rolled back by recovery");
      }
      // Become the leader: claim everything buffered so far (our commit and
      // any that batched behind it) plus a reserved file range, so the
      // write itself runs without the lock.
      flusher_active_ = true;
      job.batch = std::move(buffer_);
      buffer_.clear();
      job.upto = appended_lsn_;
      job.commits = buffered_commits_;
      buffered_commits_ = 0;
      job.offset = file_bytes_;
      file_bytes_ += job.batch.size();
    }
    Status st = WriteBatch(job);
    {
      MutexLock lock(&mu_);
      flusher_active_ = false;
      if (st.ok()) {
        durable_lsn_ = job.upto;
      } else {
        // Sticky: anything not yet durable never will be on this handle;
        // every parked committer gets the error, and the store falls back
        // to RecoverResidentFromDisk().
        device_failed_ = true;
        flush_error_ = st;
      }
      cv_.NotifyAll();
      if (!st.ok()) return st;
      if (durable_lsn_ >= lsn) return Status::OK();
    }
  }
}

Status Wal::FlushAll() {
  uint64_t target = 0;
  {
    MutexLock lock(&mu_);
    target = appended_lsn_;
  }
  return WaitDurable(target);
}

bool Wal::LookupPage(uint32_t page_id, std::string* image) const {
  MutexLock lock(&mu_);
  auto it = staged_.find(page_id);
  if (it == staged_.end()) {
    it = resident_.find(page_id);
    if (it == resident_.end()) return false;
  }
  *image = it->second;
  return true;
}

std::map<uint32_t, std::string> Wal::SnapshotResident() const {
  MutexLock lock(&mu_);
  XST_DCHECK(!txn_open_);
  return resident_;
}

uint32_t Wal::PageCountLowerBound() const {
  MutexLock lock(&mu_);
  uint32_t bound = 0;
  if (!resident_.empty()) bound = resident_.rbegin()->first + 1;
  if (!staged_.empty()) bound = std::max(bound, staged_.rbegin()->first + 1);
  return bound;
}

Status Wal::Reset(uint64_t checkpoint_lsn) {
  MutexLock lock(&mu_);
  while (flusher_active_) cv_.Wait(lock);
  XST_DCHECK(!txn_open_);
  XST_DCHECK(buffer_.empty());  // caller runs FlushAll first
  if (device_failed_) return flush_error_.WithContext("wal reset");
  // Disk first, memory second: epoch/LSN state only advances once the fresh
  // header is durably on the device. A failure partway through (truncate,
  // header write, or fsync) leaves the on-disk segment in an unknown state
  // — possibly truncated, possibly intact under the OLD header — so the
  // device is poisoned stickily, exactly like a failed flush: were appends
  // allowed to continue, their records would be fsynced and acknowledged
  // against in-memory state the on-disk header no longer describes, and
  // crash recovery would CRC-reject them as a torn tail (silent loss of
  // acknowledged commits). Poisoned, every later append/commit fails until
  // a reopen rebuilds the segment. Nothing durable is forfeited: the caller
  // checkpointed before resetting, so the fsynced main file is
  // self-contained, and resident_ is kept so reads keep working.
  Status st = WriteFreshSegment(epoch_ + 1, appended_lsn_);
  if (!st.ok()) {
    device_failed_ = true;
    flush_error_ = st.WithContext("wal reset");
    return flush_error_;
  }
  ++epoch_;
  base_lsn_ = appended_lsn_;
  last_checkpoint_lsn_ = checkpoint_lsn;
  file_bytes_ = kWalHeaderSize;
  durable_lsn_ = appended_lsn_;
  resident_.clear();
  return Status::OK();
}

Status Wal::RecoverResidentFromDisk() {
  MutexLock lock(&mu_);
  while (flusher_active_) cv_.Wait(lock);
  buffer_.clear();
  buffered_commits_ = 0;
  staged_.clear();
  txn_open_ = false;
  resident_.clear();
  // Only records up to the durable LSN count: bytes a failed fsync left on
  // the device were never acknowledged, so resurrecting them would turn an
  // error the caller saw into a commit the caller never got.
  const uint64_t durable = durable_lsn_;
  // The on-disk header must still match the in-memory generation before the
  // scan below can mean anything: after an interrupted Reset the segment may
  // be truncated or carry a stale epoch, and un-poisoning over it would
  // resume appends the next recovery scan CRC-rejects. Stay poisoned.
  XST_RETURN_NOT_OK(CheckSegmentHeader());
  // Un-poison: the durable prefix is consistent again, and a genuinely
  // dead device re-poisons on the next flush attempt (or right below, if
  // the un-acked tail cannot be trimmed off).
  device_failed_ = false;
  flush_error_ = Status::OK();
  std::map<uint32_t, std::string> resident;
  XST_RETURN_NOT_OK(ScanCommittedPrefix(&resident, durable));
  resident_ = std::move(resident);
  return Status::OK();
}

WalStats Wal::stats() const {
  MutexLock lock(&mu_);
  WalStats s;
  s.segment = epoch_;
  s.segment_bytes = file_bytes_ + buffer_.size();
  s.durable_lsn = durable_lsn_;
  s.appended_lsn = appended_lsn_;
  s.last_checkpoint_lsn = last_checkpoint_lsn_;
  return s;
}

}  // namespace xst
