#include "src/store/pager.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/wal.h"

namespace xst {

namespace {

// Process-wide mirrors of the per-instance stats (see pager.h internal).
obs::Counter& HitsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kPagerHitsCounter);
  return c;
}
obs::Counter& MissesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kPagerMissesCounter);
  return c;
}
obs::Counter& EvictionsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kPagerEvictionsCounter);
  return c;
}
obs::Counter& WritebacksCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kPagerWritebacksCounter);
  return c;
}
obs::Counter& AllocationsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kPagerAllocationsCounter);
  return c;
}
obs::Counter& LatchAcquisitionsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      internal::kPagerLatchAcquisitionsCounter);
  return c;
}
obs::Counter& LatchContentionCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      internal::kPagerLatchContentionCounter);
  return c;
}

// Largest power of two that is <= n (n >= 1).
size_t FloorPow2(size_t n) {
  size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

size_t EffectiveShards(size_t requested, size_t capacity) {
  // A power of two (page-id masking) no larger than requested, and small
  // enough that every shard keeps >= 4 frames — thinner slices would turn
  // pin pressure into spurious ResourceExhausted. One shard reproduces the
  // historical coarse pager exactly (same LRU order, same eviction counts).
  return FloorPow2(std::min(requested, std::max<size_t>(1, capacity / 4)));
}

}  // namespace

namespace internal {

ShardLatchLock::ShardLatchLock(PagerShard* shard) : shard_(shard) {
  // Counter resolution happens before the latch is taken, so the one-time
  // registry lookup (registry mutex, rank 90) never runs under a latch.
  LatchAcquisitionsCounter().Increment();
  if (!shard_->latch.TryLock()) {
    LatchContentionCounter().Increment();
    shard_->latch.Lock();
  }
}

}  // namespace internal

PageRef::PageRef(Pager* pager, internal::PageFrame* frame)
    : pager_(pager), frame_(frame) {
  // Pins are only ever acquired under the frame's shard latch (every PageRef
  // is minted inside a latched pager section), so the 0->1 transition cannot
  // race an eviction scan of the same shard.
  if (frame_->pins.fetch_add(1, std::memory_order_relaxed) == 0) {
    pager_->pinned_frames_.fetch_add(1, std::memory_order_relaxed);
  }
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Reset();
    pager_ = other.pager_;
    frame_ = other.frame_;
    other.pager_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

void PageRef::Reset() {
  if (frame_ != nullptr) pager_->Unpin(frame_);
  pager_ = nullptr;
  frame_ = nullptr;
}

void PageRef::MarkDirty() { pager_->MarkFrameDirty(frame_); }

void Pager::Unpin(internal::PageFrame* frame) {
  // Latch-free release: the evictor reads pins under the shard latch, and
  // its acquisition of the latch orders after this release RMW; we never
  // touch the frame after the decrement, so an immediate eviction is safe.
  uint32_t before = frame->pins.fetch_sub(1, std::memory_order_acq_rel);
  XST_CHECK(before > 0);
  if (before == 1) pinned_frames_.fetch_sub(1, std::memory_order_relaxed);
}

void Pager::MarkFrameDirty(internal::PageFrame* frame) {
  internal::PagerShard& shard = ShardFor(frame->page_id);
  internal::ShardLatchLock latch(&shard);
  frame->dirty = true;
  frame->logged = false;
}

PageWriteGuard::PageWriteGuard(PageRef& ref) : frame_(ref.frame_) {
  shard_ = &ref.pager_->ShardFor(frame_->page_id);
  LatchAcquisitionsCounter().Increment();
  if (!shard_->latch.TryLock()) {
    LatchContentionCounter().Increment();
    shard_->latch.Lock();
  }
}

PageWriteGuard::~PageWriteGuard() {
  // The write window closes dirty: content changed, so any previously
  // logged image no longer matches and must not satisfy a commit drain.
  frame_->dirty = true;
  frame_->logged = false;
  shard_->latch.Unlock();
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path, size_t capacity,
                                           size_t latch_shards) {
  Result<std::unique_ptr<File>> file = StdioFile::Open(path);
  if (!file.ok()) return file.status();
  return Open(std::move(*file), capacity, path, latch_shards);
}

Result<std::unique_ptr<Pager>> Pager::Open(std::unique_ptr<File> file,
                                           size_t capacity, const std::string& name,
                                           size_t latch_shards) {
  if (capacity == 0) return Status::Invalid("buffer pool capacity must be >= 1");
  if (latch_shards == 0) return Status::Invalid("latch_shards must be >= 1");
  Result<uint64_t> size = file->Size();
  if (!size.ok()) return size.status().WithContext(name);
  if (*size % kPageSize != 0) {
    return Status::Corruption(name + ": file size " + std::to_string(*size) +
                              " is not a whole number of pages");
  }
  return std::unique_ptr<Pager>(
      new Pager(std::move(file), name, capacity,
                static_cast<uint32_t>(*size / kPageSize), latch_shards));
}

Pager::Pager(std::unique_ptr<File> file, std::string name, size_t capacity,
             uint32_t page_count, size_t latch_shards)
    : file_(std::move(file)),
      name_(std::move(name)),
      capacity_per_shard_(capacity / EffectiveShards(latch_shards, capacity)),
      page_count_(page_count) {
  size_t shards = EffectiveShards(latch_shards, capacity);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<internal::PagerShard>());
  }
  shard_mask_ = static_cast<uint32_t>(shards - 1);
}

Pager::~Pager() {
  // Pin discipline: every PageRef must be released before its pager dies —
  // a surviving handle would point into a freed frame.
  XST_CHECK(pinned_frames() == 0);
  // WAL mode: writing appended-but-unsynced frames to the main file here
  // would let data overtake the log; the store checkpoints explicitly.
  if (wal_ != nullptr) return;
  // Deliberate drop: a destructor has no error channel. Callers that care
  // about durability must Flush() explicitly and check the Status first.
  (void)Flush();
}

void Pager::AttachWal(Wal* wal) {
  // Runs during store open, before any concurrent access to this pager.
  wal_ = wal;
  // The log may hold committed images for pages past the main file's end
  // (allocated since the last checkpoint); they are real logical pages.
  uint32_t bound = wal->PageCountLowerBound();
  if (bound > page_count_.load(std::memory_order_relaxed)) {
    page_count_.store(bound, std::memory_order_release);
  }
}

PagerStats Pager::stats() const {
  PagerStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.writebacks = writebacks_.load(std::memory_order_relaxed);
  s.allocations = allocations_.load(std::memory_order_relaxed);
  return s;
}

void Pager::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  writebacks_.store(0, std::memory_order_relaxed);
  allocations_.store(0, std::memory_order_relaxed);
}

Result<PageRef> Pager::AllocatePage() {
  // Allocation (like all mutation) is externally serialized — the store
  // holds SetStore::mu_ — so the id handoff below cannot race another
  // allocator; concurrent readers only ever touch ids < page_count_.
  uint32_t id = page_count_.load(std::memory_order_relaxed);
  internal::PagerShard& shard = ShardFor(id);
  internal::ShardLatchLock latch(&shard);
  Status st = EvictIfFullLocked(shard);
  if (!st.ok()) return st;
  internal::PageFrame& frame = shard.lru.emplace_front();
  frame.page_id = id;
  frame.dirty = true;
  shard.frames[id] = shard.lru.begin();
  page_count_.store(id + 1, std::memory_order_release);
  allocations_.fetch_add(1, std::memory_order_relaxed);
  AllocationsCounter().Increment();
  return PageRef(this, &frame);
}

Result<PageRef> Pager::FetchPage(uint32_t page_id) {
  if (page_id >= page_count_.load(std::memory_order_acquire)) {
    return Status::OutOfRange(
        "page " + std::to_string(page_id) + " of " +
        std::to_string(page_count_.load(std::memory_order_relaxed)));
  }
  internal::PagerShard& shard = ShardFor(page_id);
  bool counted_miss = false;
  std::string bytes(kPageSize, '\0');
  for (;;) {
    uint64_t ticks_before = 0;
    {
      // Phase 1 (latched): resident hit, or WAL image-table read-through.
      // Wal::LookupPage takes Wal::mu_ (rank 30) over this latch (rank 20):
      // rank-increasing and non-blocking (an in-memory map probe).
      internal::ShardLatchLock latch(&shard);
      auto it = shard.frames.find(page_id);
      if (it != shard.frames.end()) {
        if (!counted_miss) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          HitsCounter().Increment();
        }
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
        return PageRef(this, &*it->second);
      }
      if (!counted_miss) {
        // Counted exactly once per logical fetch, no matter how many times
        // the race below makes us retry.
        counted_miss = true;
        misses_.fetch_add(1, std::memory_order_relaxed);
        MissesCounter().Increment();
      }
      if (wal_ != nullptr && wal_->LookupPage(page_id, &bytes)) {
        Result<Page> page = Page::FromBytes(bytes, page_id);
        if (!page.ok()) {
          return page.status().WithContext("page " + std::to_string(page_id));
        }
        Status st = EvictIfFullLocked(shard);
        if (!st.ok()) return st;
        internal::PageFrame& frame = shard.lru.emplace_front();
        frame.page = std::move(*page);
        frame.page_id = page_id;
        shard.frames[page_id] = shard.lru.begin();
        return PageRef(this, &frame);
      }
      // Neither resident nor in the log: the newest version of this page is
      // in the main file. Remember the file-write tick so the re-latch below
      // can tell whether a checkpoint made the file newer than what we read.
      ticks_before = file_write_ticks_.load();
    }
    // Phase 2 (no latch held): the main-file read. StdioFile serializes
    // whole operations, so the page image cannot tear against a concurrent
    // checkpoint write — at worst it is one committed version stale, which
    // phase 3 catches.
    Status read_st;
    {
      XST_TRACE_SPAN("io.page_read");
      read_st = file_->ReadAt(static_cast<uint64_t>(page_id) * kPageSize,
                              bytes.data(), kPageSize);
    }
    Result<Page> page =
        read_st.ok() ? Page::FromBytes(bytes, page_id) : Result<Page>(read_st);
    // Phase 3 (re-latched): adopt whatever version won the race.
    internal::ShardLatchLock latch(&shard);
    auto it = shard.frames.find(page_id);
    if (it != shard.frames.end()) {
      // Another thread cached it (the same version or a newer one).
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return PageRef(this, &*it->second);
    }
    if (wal_ != nullptr && wal_->LookupPage(page_id, &bytes)) {
      // A concurrent eviction spilled a newer image into the log after our
      // phase-1 probe; the log wins over whatever the file said.
      Result<Page> logged = Page::FromBytes(bytes, page_id);
      if (!logged.ok()) {
        return logged.status().WithContext("page " + std::to_string(page_id));
      }
      Status st = EvictIfFullLocked(shard);
      if (!st.ok()) return st;
      internal::PageFrame& frame = shard.lru.emplace_front();
      frame.page = std::move(*logged);
      frame.page_id = page_id;
      shard.frames[page_id] = shard.lru.begin();
      return PageRef(this, &frame);
    }
    if (file_write_ticks_.load() != ticks_before) {
      // A file write completed during our unlatched read (a checkpoint, or a
      // legacy write-back); our bytes may be stale. Retry from the top — the
      // newest version is now cached, logged, or durably in the file.
      continue;
    }
    if (!page.ok()) {
      return page.status().WithContext("page " + std::to_string(page_id));
    }
    Status st = EvictIfFullLocked(shard);
    if (!st.ok()) return st;
    internal::PageFrame& frame = shard.lru.emplace_front();
    frame.page = std::move(*page);
    frame.page_id = page_id;
    shard.frames[page_id] = shard.lru.begin();
    return PageRef(this, &frame);
  }
}

Status Pager::ReadPageSnapshot(uint32_t page_id, Page* out) {
  if (page_id >= page_count_.load(std::memory_order_acquire)) {
    return Status::OutOfRange(
        "page " + std::to_string(page_id) + " of " +
        std::to_string(page_count_.load(std::memory_order_relaxed)));
  }
  internal::PagerShard& shard = ShardFor(page_id);
  bool counted_miss = false;
  std::string bytes(kPageSize, '\0');
  for (;;) {
    uint64_t ticks_before = 0;
    {
      // Phase 1 (latched): copy a resident frame, or decode straight out of
      // the WAL image table (see FetchPage for the rank argument).
      internal::ShardLatchLock latch(&shard);
      auto it = shard.frames.find(page_id);
      if (it != shard.frames.end()) {
        if (!counted_miss) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          HitsCounter().Increment();
        }
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // touch
        *out = it->second->page;  // in-pool copy under the latch, no pin
        return Status::OK();
      }
      if (!counted_miss) {
        counted_miss = true;
        misses_.fetch_add(1, std::memory_order_relaxed);
        MissesCounter().Increment();
      }
      if (wal_ != nullptr && wal_->LookupPage(page_id, &bytes)) {
        Result<Page> page = Page::FromBytes(bytes, page_id);
        if (!page.ok()) {
          return page.status().WithContext("page " + std::to_string(page_id));
        }
        *out = std::move(*page);
        return Status::OK();
      }
      ticks_before = file_write_ticks_.load();
    }
    // Phase 2 (no latch held): main-file read; see FetchPage for why the
    // image cannot tear.
    Status read_st;
    {
      XST_TRACE_SPAN("io.page_read");
      read_st = file_->ReadAt(static_cast<uint64_t>(page_id) * kPageSize,
                              bytes.data(), kPageSize);
    }
    Result<Page> page =
        read_st.ok() ? Page::FromBytes(bytes, page_id) : Result<Page>(read_st);
    // Phase 3 (re-latched): prefer any version that raced in; otherwise our
    // file bytes are current iff no file write completed in between, and
    // only then is caching them safe.
    internal::ShardLatchLock latch(&shard);
    auto it = shard.frames.find(page_id);
    if (it != shard.frames.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->page;
      return Status::OK();
    }
    if (wal_ != nullptr && wal_->LookupPage(page_id, &bytes)) {
      Result<Page> logged = Page::FromBytes(bytes, page_id);
      if (!logged.ok()) {
        return logged.status().WithContext("page " + std::to_string(page_id));
      }
      *out = std::move(*logged);
      return Status::OK();
    }
    if (file_write_ticks_.load() != ticks_before) {
      continue;  // a checkpoint rewrote the file under us; retry
    }
    if (!page.ok()) {
      return page.status().WithContext("page " + std::to_string(page_id));
    }
    // Cache the clean copy for later readers if a frame is available; a
    // fully pinned shard only costs us the caching, never the read itself.
    if (EvictIfFullLocked(shard).ok()) {
      internal::PageFrame& frame = shard.lru.emplace_front();
      frame.page = *page;
      frame.page_id = page_id;
      shard.frames[page_id] = shard.lru.begin();
    }
    *out = std::move(*page);
    return Status::OK();
  }
}

Status Pager::WriteBack(internal::PagerShard& shard, internal::PageFrame& frame) {
  (void)shard;  // held capability; frame belongs to it
  XST_TRACE_SPAN("io.page_write");
  std::string bytes = frame.page.ToBytes(frame.page_id);
  // Legacy no-WAL eviction path: dirty frames exist only when the store runs
  // without a log, and that mode is single-threaded by contract, so the I/O
  // under the shard latch cannot stall concurrent readers.
  Status st = file_->WriteAt(  // xst-lint: allow(blocking-under-latch)
      static_cast<uint64_t>(frame.page_id) * kPageSize, bytes.data(),
      kPageSize);
  if (!st.ok()) return st.WithContext("page " + std::to_string(frame.page_id));
  file_write_ticks_.fetch_add(1);
  writebacks_.fetch_add(1, std::memory_order_relaxed);
  WritebacksCounter().Increment();
  return Status::OK();
}

Status Pager::EvictIfFullLocked(internal::PagerShard& shard) {
  while (shard.lru.size() >= capacity_per_shard_) {
    // Least-recently-used unpinned frame; pinned frames are untouchable.
    // The pins load is ordered after any concurrent unpin's release RMW by
    // this thread's latch acquisition.
    auto victim = shard.lru.end();
    for (auto it = std::prev(shard.lru.end());; --it) {
      if (it->pins.load(std::memory_order_acquire) == 0) {
        victim = it;
        break;
      }
      if (it == shard.lru.begin()) break;
    }
    if (victim == shard.lru.end()) {
      return Status::ResourceExhausted(
          name_ + ": all " + std::to_string(capacity_per_shard_) +
          " buffer-pool frames are pinned; release a PageRef or grow the pool");
    }
    if (victim->dirty) {
      if (wal_ != nullptr) {
        // Spill to the log, never to the main file. A dirty-and-logged
        // frame's image is already in the log's table; just drop it.
        // LogPageImage only records into the in-memory image table (no
        // I/O), so it is legal under the latch (Wal::mu_ ranks above it).
        if (!victim->logged) {
          Status st = wal_->LogPageImage(victim->page_id,
                                         victim->page.ToBytes(victim->page_id));
          if (!st.ok()) return st;
          victim->logged = true;
        }
      } else {
        Status st = WriteBack(shard, *victim);
        if (!st.ok()) return st;
      }
    }
    shard.frames.erase(victim->page_id);
    shard.lru.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    EvictionsCounter().Increment();
  }
  return Status::OK();
}

Status Pager::Flush() {
  // In WAL mode the only legal main-file writer is ApplyCheckpointImage.
  XST_DCHECK(wal_ == nullptr);
  XST_TRACE_SPAN("io.flush");
  for (auto& shard : shards_) {
    internal::ShardLatchLock latch(shard.get());
    for (internal::PageFrame& frame : shard->lru) {
      if (!frame.dirty) continue;
      Status st = WriteBack(*shard, frame);
      if (!st.ok()) return st;
      frame.dirty = false;
    }
  }
  return file_->Flush();
}

Status Pager::DrainUnloggedToWal() {
  XST_DCHECK(wal_ != nullptr);
  for (auto& shard : shards_) {
    internal::ShardLatchLock latch(shard.get());
    for (internal::PageFrame& frame : shard->lru) {
      if (!frame.dirty || frame.logged) continue;
      // Buffer-only append (see EvictIfFullLocked) — legal under the latch.
      Status st =
          wal_->LogPageImage(frame.page_id, frame.page.ToBytes(frame.page_id));
      if (!st.ok()) return st.WithContext("page " + std::to_string(frame.page_id));
      frame.logged = true;
    }
  }
  return Status::OK();
}

bool Pager::HasUnloggedDirty() const {
  for (const auto& shard : shards_) {
    internal::ShardLatchLock latch(shard.get());
    for (const internal::PageFrame& frame : shard->lru) {
      if (frame.dirty && !frame.logged) return true;
    }
  }
  return false;
}

Status Pager::ApplyCheckpointImage(uint32_t page_id, const std::string& bytes) {
  XST_DCHECK(wal_ != nullptr);
  XST_DCHECK(bytes.size() == kPageSize);
  // The file write runs with no latch held (the checkpointer holds only
  // SetStore::mu_, rank 10 — below the latch floor, so blocking here is
  // legal). Ordering matters for the snapshot miss protocol: the tick
  // increment happens after the write completes and before the WAL's image
  // table is reset, so a reader that missed both the pool and the log either
  // reads the new file content or sees the tick change and refuses to cache.
  {
    XST_TRACE_SPAN("io.page_write");
    Status st = file_->WriteAt(static_cast<uint64_t>(page_id) * kPageSize,
                               bytes.data(), bytes.size());
    if (!st.ok()) return st.WithContext("page " + std::to_string(page_id));
  }
  file_write_ticks_.fetch_add(1);
  writebacks_.fetch_add(1, std::memory_order_relaxed);
  WritebacksCounter().Increment();
  internal::PagerShard& shard = ShardFor(page_id);
  internal::ShardLatchLock latch(&shard);
  auto it = shard.frames.find(page_id);
  if (it != shard.frames.end()) {
    // The resident frame holds the same committed content the image came
    // from (checkpoints run with no transaction open), so it is clean now.
    it->second->dirty = false;
    it->second->logged = false;
  }
  return Status::OK();
}

Status Pager::SyncFile() { return file_->Flush(); }

}  // namespace xst
