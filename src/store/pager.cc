#include "src/store/pager.h"

#include <cerrno>
#include <cstring>

namespace xst {

namespace {

Status IOErrorFromErrno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path, size_t capacity) {
  if (capacity == 0) return Status::Invalid("buffer pool capacity must be >= 1");
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "w+b");
    if (file == nullptr) return IOErrorFromErrno("open " + path);
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return IOErrorFromErrno("seek " + path);
  }
  long size = std::ftell(file);
  if (size < 0 || static_cast<size_t>(size) % kPageSize != 0) {
    std::fclose(file);
    return Status::Corruption(path + ": file size " + std::to_string(size) +
                              " is not a whole number of pages");
  }
  return std::unique_ptr<Pager>(
      new Pager(file, capacity, static_cast<uint32_t>(size / kPageSize)));
}

Pager::~Pager() {
  Flush().ok();  // best effort on teardown
  std::fclose(file_);
}

Result<uint32_t> Pager::AllocatePage() {
  uint32_t page_id = page_count_;
  Frame frame;
  frame.dirty = true;
  Status st = EvictIfFull();
  if (!st.ok()) return st;
  lru_.emplace_front(page_id, std::move(frame));
  frames_[page_id] = lru_.begin();
  ++page_count_;
  ++stats_.allocations;
  return page_id;
}

Result<Page*> Pager::FetchPage(uint32_t page_id) {
  if (page_id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_id) + " of " +
                              std::to_string(page_count_));
  }
  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    return &it->second->second.page;
  }
  ++stats_.misses;
  Status st = EvictIfFull();
  if (!st.ok()) return st;
  std::string bytes(kPageSize, '\0');
  if (std::fseek(file_, static_cast<long>(page_id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return IOErrorFromErrno("seek page " + std::to_string(page_id));
  }
  if (std::fread(bytes.data(), 1, kPageSize, file_) != kPageSize) {
    return IOErrorFromErrno("read page " + std::to_string(page_id));
  }
  Result<Page> page = Page::FromBytes(bytes);
  if (!page.ok()) {
    return page.status().WithContext("page " + std::to_string(page_id));
  }
  Frame frame;
  frame.page = *std::move(page);
  lru_.emplace_front(page_id, std::move(frame));
  frames_[page_id] = lru_.begin();
  return &lru_.begin()->second.page;
}

Status Pager::MarkDirty(uint32_t page_id) {
  auto it = frames_.find(page_id);
  if (it == frames_.end()) {
    return Status::Invalid("MarkDirty: page " + std::to_string(page_id) +
                           " is not resident");
  }
  it->second->second.dirty = true;
  return Status::OK();
}

Status Pager::WriteBack(uint32_t page_id, const Frame& frame) {
  std::string bytes = frame.page.ToBytes();
  if (std::fseek(file_, static_cast<long>(page_id) * static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return IOErrorFromErrno("seek page " + std::to_string(page_id));
  }
  if (std::fwrite(bytes.data(), 1, kPageSize, file_) != kPageSize) {
    return IOErrorFromErrno("write page " + std::to_string(page_id));
  }
  ++stats_.writebacks;
  return Status::OK();
}

Status Pager::EvictIfFull() {
  while (lru_.size() >= capacity_) {
    auto& [victim_id, victim] = lru_.back();
    if (victim.dirty) {
      Status st = WriteBack(victim_id, victim);
      if (!st.ok()) return st;
    }
    frames_.erase(victim_id);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return Status::OK();
}

Status Pager::Flush() {
  for (auto& [page_id, frame] : lru_) {
    if (!frame.dirty) continue;
    Status st = WriteBack(page_id, frame);
    if (!st.ok()) return st;
    frame.dirty = false;
  }
  if (std::fflush(file_) != 0) return IOErrorFromErrno("fflush");
  return Status::OK();
}

}  // namespace xst
