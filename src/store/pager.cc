#include "src/store/pager.h"

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/wal.h"

namespace xst {

namespace {

// Process-wide mirrors of the per-instance stats (see pager.h internal).
obs::Counter& HitsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kPagerHitsCounter);
  return c;
}
obs::Counter& MissesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kPagerMissesCounter);
  return c;
}
obs::Counter& EvictionsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kPagerEvictionsCounter);
  return c;
}
obs::Counter& WritebacksCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kPagerWritebacksCounter);
  return c;
}
obs::Counter& AllocationsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter(internal::kPagerAllocationsCounter);
  return c;
}

}  // namespace

PageRef::PageRef(Pager* pager, internal::PageFrame* frame)
    : pager_(pager), frame_(frame) {
  if (frame_->pins++ == 0) ++pager_->pinned_frames_;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Reset();
    pager_ = other.pager_;
    frame_ = other.frame_;
    other.pager_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

void PageRef::Reset() {
  if (frame_ != nullptr) pager_->Unpin(frame_);
  pager_ = nullptr;
  frame_ = nullptr;
}

void Pager::Unpin(internal::PageFrame* frame) {
  XST_CHECK(frame->pins > 0);
  if (--frame->pins == 0) --pinned_frames_;
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path, size_t capacity) {
  Result<std::unique_ptr<File>> file = StdioFile::Open(path);
  if (!file.ok()) return file.status();
  return Open(std::move(*file), capacity, path);
}

Result<std::unique_ptr<Pager>> Pager::Open(std::unique_ptr<File> file,
                                           size_t capacity, const std::string& name) {
  if (capacity == 0) return Status::Invalid("buffer pool capacity must be >= 1");
  Result<uint64_t> size = file->Size();
  if (!size.ok()) return size.status().WithContext(name);
  if (*size % kPageSize != 0) {
    return Status::Corruption(name + ": file size " + std::to_string(*size) +
                              " is not a whole number of pages");
  }
  return std::unique_ptr<Pager>(new Pager(std::move(file), name, capacity,
                                          static_cast<uint32_t>(*size / kPageSize)));
}

Pager::~Pager() {
  // Pin discipline: every PageRef must be released before its pager dies —
  // a surviving handle would point into a freed frame.
  XST_CHECK(pinned_frames_ == 0);
  // WAL mode: writing appended-but-unsynced frames to the main file here
  // would let data overtake the log; the store checkpoints explicitly.
  if (wal_ != nullptr) return;
  // Deliberate drop: a destructor has no error channel. Callers that care
  // about durability must Flush() explicitly and check the Status first.
  (void)Flush();
}

void Pager::AttachWal(Wal* wal) {
  wal_ = wal;
  // The log may hold committed images for pages past the main file's end
  // (allocated since the last checkpoint); they are real logical pages.
  uint32_t bound = wal->PageCountLowerBound();
  if (bound > page_count_) page_count_ = bound;
}

Result<PageRef> Pager::AllocatePage() {
  Status st = EvictIfFull();
  if (!st.ok()) return st;
  internal::PageFrame frame;
  frame.page_id = page_count_;
  frame.dirty = true;
  lru_.push_front(std::move(frame));
  frames_[page_count_] = lru_.begin();
  ++page_count_;
  ++stats_.allocations;
  AllocationsCounter().Increment();
  return PageRef(this, &*lru_.begin());
}

Result<PageRef> Pager::FetchPage(uint32_t page_id) {
  if (page_id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_id) + " of " +
                              std::to_string(page_count_));
  }
  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    ++stats_.hits;
    HitsCounter().Increment();
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    return PageRef(this, &*it->second);
  }
  ++stats_.misses;
  MissesCounter().Increment();
  Status st = EvictIfFull();
  if (!st.ok()) return st;
  XST_TRACE_SPAN("io.page_read");
  std::string bytes(kPageSize, '\0');
  // WAL read-through: the log's image table holds the newest version of any
  // page appended since the last checkpoint (including spilled frames and
  // pages the main file does not contain yet).
  if (wal_ == nullptr || !wal_->LookupPage(page_id, &bytes)) {
    st = file_->ReadAt(static_cast<uint64_t>(page_id) * kPageSize, bytes.data(),
                       kPageSize);
    if (!st.ok()) return st.WithContext("page " + std::to_string(page_id));
  }
  Result<Page> page = Page::FromBytes(bytes, page_id);
  if (!page.ok()) {
    return page.status().WithContext("page " + std::to_string(page_id));
  }
  internal::PageFrame frame;
  frame.page = std::move(*page);
  frame.page_id = page_id;
  lru_.push_front(std::move(frame));
  frames_[page_id] = lru_.begin();
  return PageRef(this, &*lru_.begin());
}

Status Pager::WriteBack(internal::PageFrame& frame) {
  XST_TRACE_SPAN("io.page_write");
  std::string bytes = frame.page.ToBytes(frame.page_id);
  Status st = file_->WriteAt(static_cast<uint64_t>(frame.page_id) * kPageSize,
                             bytes.data(), kPageSize);
  if (!st.ok()) return st.WithContext("page " + std::to_string(frame.page_id));
  ++stats_.writebacks;
  WritebacksCounter().Increment();
  return Status::OK();
}

Status Pager::EvictIfFull() {
  while (lru_.size() >= capacity_) {
    // Least-recently-used unpinned frame; pinned frames are untouchable.
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      if (it->pins == 0) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) {
      return Status::ResourceExhausted(
          name_ + ": all " + std::to_string(capacity_) +
          " buffer-pool frames are pinned; release a PageRef or grow the pool");
    }
    if (victim->dirty) {
      if (wal_ != nullptr) {
        // Spill to the log, never to the main file. A dirty-and-logged
        // frame's image is already in the log's table; just drop it.
        if (!victim->logged) {
          Status st = wal_->LogPageImage(victim->page_id,
                                         victim->page.ToBytes(victim->page_id));
          if (!st.ok()) return st;
          victim->logged = true;
        }
      } else {
        Status st = WriteBack(*victim);
        if (!st.ok()) return st;
      }
    }
    frames_.erase(victim->page_id);
    lru_.erase(victim);
    ++stats_.evictions;
    EvictionsCounter().Increment();
  }
  return Status::OK();
}

Status Pager::Flush() {
  // In WAL mode the only legal main-file writer is ApplyCheckpointImage.
  XST_DCHECK(wal_ == nullptr);
  XST_TRACE_SPAN("io.flush");
  for (internal::PageFrame& frame : lru_) {
    if (!frame.dirty) continue;
    Status st = WriteBack(frame);
    if (!st.ok()) return st;
    frame.dirty = false;
  }
  return file_->Flush();
}

Status Pager::DrainUnloggedToWal() {
  XST_DCHECK(wal_ != nullptr);
  for (internal::PageFrame& frame : lru_) {
    if (!frame.dirty || frame.logged) continue;
    Status st = wal_->LogPageImage(frame.page_id, frame.page.ToBytes(frame.page_id));
    if (!st.ok()) return st.WithContext("page " + std::to_string(frame.page_id));
    frame.logged = true;
  }
  return Status::OK();
}

bool Pager::HasUnloggedDirty() const {
  for (const internal::PageFrame& frame : lru_) {
    if (frame.dirty && !frame.logged) return true;
  }
  return false;
}

Status Pager::ApplyCheckpointImage(uint32_t page_id, const std::string& bytes) {
  XST_DCHECK(wal_ != nullptr);
  XST_DCHECK(bytes.size() == kPageSize);
  XST_TRACE_SPAN("io.page_write");
  Status st = file_->WriteAt(static_cast<uint64_t>(page_id) * kPageSize,
                             bytes.data(), bytes.size());
  if (!st.ok()) return st.WithContext("page " + std::to_string(page_id));
  ++stats_.writebacks;
  WritebacksCounter().Increment();
  auto it = frames_.find(page_id);
  if (it != frames_.end()) {
    // The resident frame holds the same committed content the image came
    // from (checkpoints run with no transaction open), so it is clean now.
    it->second->dirty = false;
    it->second->logged = false;
  }
  return Status::OK();
}

Status Pager::SyncFile() { return file_->Flush(); }

}  // namespace xst
