#include "src/store/setstore.h"

#include <cstdio>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/macros.h"
#include "src/core/order.h"
#include "src/obs/trace.h"
#include "src/ops/tuple.h"
#include "src/store/codec.h"
#include "src/store/cursor.h"

namespace xst {

namespace {

// A conservative per-page chunk budget: page free space for the first record
// of a fresh page.
size_t ChunkCapacity() {
  static const size_t capacity = Page().FreeSpace();
  return capacity;
}

BTreeInfo IndexInfoOf(const CatalogEntry& entry) {
  return BTreeInfo{entry.first_page, entry.page_span, entry.byte_length};
}

CatalogEntry IndexEntryOf(const BTreeInfo& info) {
  CatalogEntry entry;
  entry.first_page = info.root;
  entry.page_span = info.height;
  entry.byte_length = info.member_count;
  entry.kind = CatalogEntry::kKindIndex;
  return entry;
}

}  // namespace

Result<std::unique_ptr<Pager>> SetStore::OpenPager(const std::string& path) const {
  Result<std::unique_ptr<File>> file =
      options_.file_factory ? options_.file_factory(path) : StdioFile::Open(path);
  if (!file.ok()) return file.status();
  return Pager::Open(std::move(*file), options_.buffer_pool_pages, path);
}

Status SetStore::CheckOpen() const {
  if (pager_ == nullptr) {
    return Status::IOError("store '" + path_ +
                           "' is closed (a compaction reopen failed); reopen it "
                           "from the path");
  }
  return Status::OK();
}

Result<std::unique_ptr<SetStore>> SetStore::Open(const std::string& path,
                                                 const SetStoreOptions& options) {
  std::unique_ptr<SetStore> store(new SetStore(path, options));
  // Nobody else can reach the fresh store yet, but its guarded fields still
  // demand the capability — and a one-time uncontended lock is free.
  MutexLock lock(&store->mu_);
  XST_ASSIGN_OR_RAISE(store->pager_, store->OpenPager(path));
  if (store->pager_->page_count() == 0) {
    // Fresh store: create the superblock.
    {
      XST_ASSIGN_OR_RAISE(PageRef superblock, store->pager_->AllocatePage());
      // The sizeof-based XST_DCHECK counts as a use even under NDEBUG, so no
      // (void) cast is needed to silence -Wunused-variable.
      XST_DCHECK(superblock.id() == 0);
    }
    XST_RETURN_NOT_OK(store->PersistCatalog(store->catalog_));
  } else {
    XST_RETURN_NOT_OK(store->LoadCatalog());
  }
  return store;
}

Result<CatalogEntry> SetStore::WriteBlob(const std::string& bytes) {
  CatalogEntry entry;
  entry.byte_length = bytes.size();
  size_t offset = 0;
  uint32_t span = 0;
  do {
    size_t chunk = std::min(ChunkCapacity(), bytes.size() - offset);
    // AllocatePage returns the frame pinned and already dirty; the pin drops
    // at the end of each iteration, so even a capacity-1 pool makes progress.
    XST_ASSIGN_OR_RAISE(PageRef page, pager_->AllocatePage());
    if (span == 0) entry.first_page = page.id();
    if (chunk > 0) {
      Result<uint32_t> slot = page->AddRecord(std::string_view(bytes).substr(offset, chunk));
      if (!slot.ok()) return slot.status();
    }
    offset += chunk;
    ++span;
  } while (offset < bytes.size());
  entry.page_span = span;
  return entry;
}

Result<std::string> SetStore::ReadBlob(const CatalogEntry& entry) {
  std::string bytes;
  bytes.reserve(entry.byte_length);
  for (uint32_t i = 0; i < entry.page_span; ++i) {
    XST_ASSIGN_OR_RAISE(PageRef page, pager_->FetchPage(entry.first_page + i));
    if (page->slot_count() == 0) continue;  // empty blob chunk
    // The record view aliases the frame; the pin keeps it valid while we
    // copy (the old raw-pointer API dangled exactly here under pool
    // pressure).
    XST_ASSIGN_OR_RAISE(std::string_view record, page->GetRecord(0));
    bytes.append(record);
  }
  if (bytes.size() != entry.byte_length) {
    return Status::Corruption("blob length mismatch: expected " +
                              std::to_string(entry.byte_length) + ", got " +
                              std::to_string(bytes.size()));
  }
  return bytes;
}

Status SetStore::PersistCatalog(const Catalog& staged) {
  // Write the catalog blob first, then swap the superblock pointer — the
  // order that keeps a crash from orphaning anything but garbage pages.
  std::string encoded = EncodeXSetToString(staged.ToXSet());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, WriteBlob(encoded));
  XSet pointer = XSet::Pair(XSet::Int(entry.first_page),
                            XSet::Int(static_cast<int64_t>(entry.byte_length)));
  XSet with_span = XSet::Pair(pointer, XSet::Int(entry.page_span));
  std::string superblock_record = EncodeXSetToString(with_span);

  XST_ASSIGN_OR_RAISE(PageRef superblock, pager_->FetchPage(0));
  *superblock = Page();  // reset: the superblock holds exactly one record
  Result<uint32_t> slot = superblock->AddRecord(superblock_record);
  if (!slot.ok()) return slot.status();
  superblock.MarkDirty();
  superblock.Reset();  // unpin before the flush sweep
  return pager_->Flush();
}

Status SetStore::ValidateBlobRange(const std::string& what, int64_t first_page,
                                   int64_t page_span, int64_t byte_length) const {
  const int64_t page_count = pager_->page_count();
  const auto fail = [&](const std::string& detail) {
    return Status::Corruption(what + ": " + detail + " (first_page=" +
                              std::to_string(first_page) +
                              ", page_span=" + std::to_string(page_span) +
                              ", byte_length=" + std::to_string(byte_length) +
                              ", file has " + std::to_string(page_count) + " pages)");
  };
  // Page 0 is the superblock, so every blob lives in [1, page_count).
  if (first_page < 1) return fail("first page out of range");
  if (page_span < 1) return fail("page span out of range");
  if (byte_length < 0) return fail("negative byte length");
  if (first_page > page_count - page_span) return fail("page range beyond end of file");
  // page_span < page_count here, so the product cannot overflow.
  if (byte_length > page_span * static_cast<int64_t>(ChunkCapacity())) {
    return fail("byte length exceeds what the page span can hold");
  }
  return Status::OK();
}

Status SetStore::LoadCatalog() {
  XSet with_span = XSet::Empty();
  {
    // Scoped pin: the superblock must be unpinned before ReadBlob below, or
    // a capacity-1 pool could never load its own catalog.
    XST_ASSIGN_OR_RAISE(PageRef superblock, pager_->FetchPage(0));
    XST_ASSIGN_OR_RAISE(std::string_view record, superblock->GetRecord(0));
    XST_ASSIGN_OR_RAISE(with_span, DecodeXSetWhole(record));
  }
  XST_ASSIGN_OR_RAISE(XSet pointer, TupleGet(with_span, 1));
  XST_ASSIGN_OR_RAISE(XSet span_val, TupleGet(with_span, 2));
  XST_ASSIGN_OR_RAISE(XSet first_val, TupleGet(pointer, 1));
  XST_ASSIGN_OR_RAISE(XSet len_val, TupleGet(pointer, 2));
  if (!first_val.is_int() || !len_val.is_int() || !span_val.is_int()) {
    return Status::Corruption("superblock pointer is not numeric");
  }
  // Validate before any narrowing cast: a negative or oversized value must
  // surface here as Corruption, not wrap into a bogus page fetch or a
  // confusing blob-length mismatch downstream.
  XST_RETURN_NOT_OK(ValidateBlobRange("superblock catalog pointer",
                                      first_val.int_value(), span_val.int_value(),
                                      len_val.int_value()));
  CatalogEntry entry;
  entry.first_page = static_cast<uint32_t>(first_val.int_value());
  entry.page_span = static_cast<uint32_t>(span_val.int_value());
  entry.byte_length = static_cast<uint64_t>(len_val.int_value());
  XST_ASSIGN_OR_RAISE(std::string encoded, ReadBlob(entry));
  XST_ASSIGN_OR_RAISE(XSet repr, DecodeXSetWhole(encoded));
  XST_ASSIGN_OR_RAISE(Catalog loaded, Catalog::FromXSet(repr));
  for (const std::string& name : loaded.Names()) {
    CatalogEntry e = *loaded.Get(name);
    if (e.kind == CatalogEntry::kKindIndex) {
      XST_RETURN_NOT_OK(ValidateIndexRange("catalog entry '" + name + "'", e));
    } else {
      XST_RETURN_NOT_OK(ValidateBlobRange("catalog entry '" + name + "'",
                                          static_cast<int64_t>(e.first_page),
                                          static_cast<int64_t>(e.page_span),
                                          static_cast<int64_t>(e.byte_length)));
    }
  }
  catalog_ = std::move(loaded);
  return Status::OK();
}

Status SetStore::Put(const std::string& name, const XSet& value) {
  XST_TRACE_SPAN("store.put");
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  if (name.empty()) return Status::Invalid("set names must be non-empty");
  std::string encoded = EncodeXSetToString(value);
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, WriteBlob(encoded));
  // Stage-then-commit: the in-memory catalog only advances once the persist
  // has fully succeeded, so a failed put leaves resident state untouched.
  Catalog staged = catalog_;
  staged.Put(name, entry);
  XST_RETURN_NOT_OK(PersistCatalog(staged));
  catalog_ = std::move(staged);
  return Status::OK();
}

Status SetStore::PutBatch(const std::vector<std::pair<std::string, XSet>>& entries) {
  XST_TRACE_SPAN("store.put_batch");
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  // Validate up front: the batch must be all-or-nothing, so no partial
  // catalog mutation may happen after the first write.
  std::unordered_set<std::string> seen;
  for (const auto& [name, value] : entries) {
    (void)value;
    if (name.empty()) return Status::Invalid("set names must be non-empty");
    if (!seen.insert(name).second) {
      return Status::Invalid("PutBatch: duplicate name '" + name + "' in batch");
    }
  }
  Catalog staged = catalog_;
  for (const auto& [name, value] : entries) {
    std::string encoded = EncodeXSetToString(value);
    XST_ASSIGN_OR_RAISE(CatalogEntry entry, WriteBlob(encoded));
    staged.Put(name, entry);
  }
  XST_RETURN_NOT_OK(PersistCatalog(staged));  // the single commit point
  catalog_ = std::move(staged);
  return Status::OK();
}

Result<size_t> SetStore::Scrub() {
  XST_TRACE_SPAN("store.scrub");
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  size_t verified = 0;
  for (const std::string& name : catalog_.Names()) {
    XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
    if (entry.kind == CatalogEntry::kKindIndex) {
      Status valid = ValidateBTree(*pager_, IndexInfoOf(entry));
      if (!valid.ok()) return valid.WithContext("scrub: set '" + name + "'");
    }
    Result<XSet> value = GetLocked(name);
    if (!value.ok()) {
      return value.status().WithContext("scrub: set '" + name + "'");
    }
    ++verified;
  }
  return verified;
}

Result<XSet> SetStore::Get(const std::string& name) {
  XST_TRACE_SPAN("store.get");
  MutexLock lock(&mu_);
  return GetLocked(name);
}

Result<XSet> SetStore::GetLocked(const std::string& name) {
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind == CatalogEntry::kKindIndex) return GetIndexLocked(name, entry);
  XST_ASSIGN_OR_RAISE(std::string encoded, ReadBlob(entry));
  Result<XSet> decoded = DecodeXSetWhole(encoded);
  if (!decoded.ok()) return decoded.status().WithContext("set '" + name + "'");
  return decoded;
}

Result<XSet> SetStore::GetIndexLocked(const std::string& name,
                                      const CatalogEntry& entry) {
  const BTreeInfo info = IndexInfoOf(entry);
#if XST_VALIDATE_LEVEL >= 2
  XST_RETURN_NOT_OK(ValidateBTree(*pager_, info).WithContext("set '" + name + "'"));
#endif
  BTree tree(pager_.get(), info);
  Result<BTreeCursorPos> pos = tree.SeekFirst();
  if (!pos.ok()) return pos.status().WithContext("set '" + name + "'");
  std::vector<Membership> members;
  members.reserve(info.member_count);
  for (;;) {
    Result<bool> more = tree.ReadLeafBatch(&*pos, nullptr, &members);
    if (!more.ok()) return more.status().WithContext("set '" + name + "'");
    if (!*more) break;
  }
  // The leaf walk must agree with the catalog's cardinality and be strictly
  // ascending — a half-applied mutation that reached disk surfaces here as
  // Corruption rather than as a silently wrong set.
  if (members.size() != info.member_count) {
    return Status::Corruption("set '" + name + "': index holds " +
                              std::to_string(members.size()) +
                              " members but the catalog says " +
                              std::to_string(info.member_count));
  }
  if (!IsCanonicalMemberList(members)) {
    return Status::Corruption("set '" + name + "': index leaves out of order");
  }
  XST_DCHECK(IsCanonicalMemberList(members));
  return XSet::FromSortedMembers(std::move(members));
}

Status SetStore::ValidateIndexRange(const std::string& what,
                                    const CatalogEntry& entry) const {
  const auto fail = [&](const std::string& detail) {
    return Status::Corruption(what + ": " + detail +
                              " (root=" + std::to_string(entry.first_page) +
                              ", height=" + std::to_string(entry.page_span) +
                              ", members=" + std::to_string(entry.byte_length) +
                              ", file has " + std::to_string(pager_->page_count()) +
                              " pages)");
  };
  if (entry.first_page < 1 || entry.first_page >= pager_->page_count()) {
    return fail("root page out of range");
  }
  if (entry.page_span < 1 || entry.page_span > kMaxBTreeHeight) {
    return fail("height out of range");
  }
  return Status::OK();
}

Status SetStore::CommitTreeMutation(const std::string& name, const BTreeInfo& info) {
#if XST_VALIDATE_LEVEL >= 1
  Status valid = ValidateBTree(*pager_, info);
  if (!valid.ok()) {
    Status reopen = Reopen();
    if (!reopen.ok()) return reopen.WithContext("reopen after invalid tree '" + name + "'");
    return valid.WithContext("mutated tree '" + name + "'");
  }
#endif
  Catalog staged = catalog_;
  staged.Put(name, IndexEntryOf(info));
  Status persisted = PersistCatalog(staged);
  if (!persisted.ok()) {
    // The tree pages may be partly on disk with the old catalog still
    // pointing at the old identity; discard resident state. A reopened
    // store serves either the pre-state or detectable Corruption.
    Status reopen = Reopen();
    if (!reopen.ok()) {
      return reopen.WithContext("reopen after failed commit of '" + name + "'");
    }
    return persisted.WithContext("commit of '" + name + "'");
  }
  catalog_ = std::move(staged);
  return Status::OK();
}

Status SetStore::PutIndexed(const std::string& name, const XSet& value) {
  XST_TRACE_SPAN("store.put_indexed");
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  if (name.empty()) return Status::Invalid("set names must be non-empty");
  if (value.is_atom()) {
    return Status::Invalid("ordered-index storage holds member lists; atom '" +
                           value.ToString() + "' has none (use Put)");
  }
  Result<BTreeInfo> info = BTree::Build(*pager_, value.members());
  if (!info.ok()) return info.status().WithContext("index build for '" + name + "'");
  return CommitTreeMutation(name, *info);
}

Status SetStore::InsertMember(const std::string& name, const Membership& m) {
  XST_TRACE_SPAN("store.insert_member");
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind != CatalogEntry::kKindIndex) {
    return Status::Invalid("'" + name +
                           "' is blob-stored; member mutation needs PutIndexed");
  }
  BTree tree(pager_.get(), IndexInfoOf(entry));
  Result<bool> inserted = tree.Insert(m);
  if (!inserted.ok()) {
    Status reopen = Reopen();
    if (!reopen.ok()) {
      return reopen.WithContext("reopen after failed insert into '" + name + "'");
    }
    return inserted.status().WithContext("insert into '" + name + "'");
  }
  if (!*inserted) return Status::OK();  // already present; the tree is untouched
  return CommitTreeMutation(name, tree.info());
}

Status SetStore::EraseMember(const std::string& name, const Membership& m) {
  XST_TRACE_SPAN("store.erase_member");
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind != CatalogEntry::kKindIndex) {
    return Status::Invalid("'" + name +
                           "' is blob-stored; member mutation needs PutIndexed");
  }
  BTree tree(pager_.get(), IndexInfoOf(entry));
  Result<bool> erased = tree.Erase(m);
  if (!erased.ok()) {
    Status reopen = Reopen();
    if (!reopen.ok()) {
      return reopen.WithContext("reopen after failed erase from '" + name + "'");
    }
    return erased.status().WithContext("erase from '" + name + "'");
  }
  if (!*erased) return Status::OK();  // absent; the tree is untouched
  return CommitTreeMutation(name, tree.info());
}

Result<bool> SetStore::ContainsMember(const std::string& name, const Membership& m) {
  XST_TRACE_SPAN("store.contains_member");
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind == CatalogEntry::kKindIndex) {
    BTree tree(pager_.get(), IndexInfoOf(entry));
    return tree.Contains(m);
  }
  XST_ASSIGN_OR_RAISE(XSet value, GetLocked(name));
  for (const Membership& member : value.members()) {
    if (CompareMembership(member, m) == 0) return true;
  }
  return false;
}

Result<StorageMode> SetStore::ModeOf(const std::string& name) const {
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  return entry.kind == CatalogEntry::kKindIndex ? StorageMode::kOrderedIndex
                                                : StorageMode::kBlob;
}

Result<std::unique_ptr<MemberCursor>> SetStore::OpenCursor(const std::string& name) {
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind == CatalogEntry::kKindIndex) {
#if XST_VALIDATE_LEVEL >= 2
    XST_RETURN_NOT_OK(
        ValidateBTree(*pager_, IndexInfoOf(entry)).WithContext("set '" + name + "'"));
#endif
    BTree tree(pager_.get(), IndexInfoOf(entry));
    XST_ASSIGN_OR_RAISE(BTreeCursorPos pos, tree.SeekFirst());
    return std::unique_ptr<MemberCursor>(new BTreeCursor(*this, pos, std::nullopt));
  }
  XST_ASSIGN_OR_RAISE(XSet value, GetLocked(name));
  return std::unique_ptr<MemberCursor>(new StoredSetCursor(std::move(value)));
}

Result<std::unique_ptr<MemberCursor>> SetStore::OpenElementRange(
    const std::string& name, const XSet& lo, const XSet& hi) {
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind == CatalogEntry::kKindIndex) {
#if XST_VALIDATE_LEVEL >= 2
    XST_RETURN_NOT_OK(
        ValidateBTree(*pager_, IndexInfoOf(entry)).WithContext("set '" + name + "'"));
#endif
    // Seek the lower edge now; batches then touch only in-range leaves.
    BTree tree(pager_.get(), IndexInfoOf(entry));
    XST_ASSIGN_OR_RAISE(BTreeCursorPos pos, tree.SeekElement(lo));
    return std::unique_ptr<MemberCursor>(new BTreeCursor(*this, pos, hi));
  }
  XST_ASSIGN_OR_RAISE(XSet value, GetLocked(name));
  return std::unique_ptr<MemberCursor>(new ElementRangeCursor(
      std::unique_ptr<MemberCursor>(new StoredSetCursor(std::move(value))), lo, hi));
}

Status SetStore::ReadIndexBatch(BTreeCursorPos* pos, const XSet* hi_element,
                                std::vector<Membership>* out) {
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  BTree tree(pager_.get(), BTreeInfo{});  // position-only reads ignore the root
  const size_t before = out->size();
  for (;;) {
    XST_ASSIGN_OR_RAISE(bool more, tree.ReadLeafBatch(pos, hi_element, out));
    if (!more || out->size() > before) return Status::OK();
  }
}

Status SetStore::Delete(const std::string& name) {
  XST_TRACE_SPAN("store.delete");
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  Catalog staged = catalog_;
  XST_RETURN_NOT_OK(staged.Remove(name));
  XST_RETURN_NOT_OK(PersistCatalog(staged));
  catalog_ = std::move(staged);
  return Status::OK();
}

Status SetStore::Flush() {
  MutexLock lock(&mu_);
  return FlushLocked();
}

Status SetStore::FlushLocked() {
  XST_RETURN_NOT_OK(CheckOpen());
  return pager_->Flush();
}

Status SetStore::Reopen() {
  pager_.reset();
  Result<std::unique_ptr<Pager>> pager = OpenPager(path_);
  if (!pager.ok()) return pager.status();  // pager_ stays null: store closed
  pager_ = std::move(*pager);
  Status st = LoadCatalog();
  if (!st.ok()) {
    // Never serve the old catalog against a file we could not load from —
    // its page references may decode to the wrong data. Close instead.
    pager_.reset();
    return st;
  }
  return Status::OK();
}

Status SetStore::CopyLiveTo(const std::string& tmp_path) {
  XST_ASSIGN_OR_RAISE(std::unique_ptr<SetStore> fresh,
                      SetStore::Open(tmp_path, options_));
  for (const std::string& name : catalog_.Names()) {
    XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
    XST_ASSIGN_OR_RAISE(XSet value, GetLocked(name));
    // Preserve the storage mode: an indexed set stays indexed (rebuilt
    // compact, dropping stale nodes and dead overflow chains).
    if (entry.kind == CatalogEntry::kKindIndex) {
      XST_RETURN_NOT_OK(fresh->PutIndexed(name, value));
    } else {
      XST_RETURN_NOT_OK(fresh->Put(name, value));
    }
  }
  return fresh->Flush();
}

Status SetStore::Compact() {
  XST_TRACE_SPAN("store.compact");
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  // Rewrite live blobs into a sibling file, then swap it in.
  const std::string tmp_path = path_ + ".compact";
  std::remove(tmp_path.c_str());
  Status st = CopyLiveTo(tmp_path);
  if (st.ok()) st = FlushLocked();
  if (!st.ok()) {
    // The original file and the resident catalog are untouched; drop the
    // half-written sibling and report.
    std::remove(tmp_path.c_str());
    return st.WithContext("compact " + path_);
  }
  pager_.reset();  // close our file before replacing it
  int rc = options_.rename_fn ? options_.rename_fn(tmp_path.c_str(), path_.c_str())
                              : std::rename(tmp_path.c_str(), path_.c_str());
  if (rc != 0) {
    std::remove(tmp_path.c_str());
    Status reopened = Reopen();  // the original file is intact; keep serving it
    Status failed = Status::IOError("compact " + path_ + ": rename failed");
    return reopened.ok() ? failed
                         : reopened.WithContext("compact: reopen after failed rename");
  }
  return Reopen().WithContext("compact " + path_ + ": reopen after swap");
}

}  // namespace xst
