#include "src/store/setstore.h"

#include <cstdio>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/macros.h"
#include "src/ops/tuple.h"
#include "src/store/codec.h"

namespace xst {

namespace {

// A conservative per-page chunk budget: page free space for the first record
// of a fresh page.
size_t ChunkCapacity() {
  static const size_t capacity = Page().FreeSpace();
  return capacity;
}

}  // namespace

Result<std::unique_ptr<SetStore>> SetStore::Open(const std::string& path,
                                                 const SetStoreOptions& options) {
  XST_ASSIGN_OR_RAISE(std::unique_ptr<Pager> pager,
                      Pager::Open(path, options.buffer_pool_pages));
  std::unique_ptr<SetStore> store(new SetStore(path, std::move(pager)));
  if (store->pager_->page_count() == 0) {
    // Fresh store: create the superblock.
    XST_ASSIGN_OR_RAISE(uint32_t superblock, store->pager_->AllocatePage());
    // The sizeof-based XST_DCHECK counts as a use even under NDEBUG, so no
    // (void) cast is needed to silence -Wunused-variable.
    XST_DCHECK(superblock == 0);
    XST_RETURN_NOT_OK(store->PersistCatalog());
  } else {
    XST_RETURN_NOT_OK(store->LoadCatalog());
  }
  return store;
}

Result<CatalogEntry> SetStore::WriteBlob(const std::string& bytes) {
  CatalogEntry entry;
  entry.byte_length = bytes.size();
  size_t offset = 0;
  uint32_t span = 0;
  do {
    size_t chunk = std::min(ChunkCapacity(), bytes.size() - offset);
    XST_ASSIGN_OR_RAISE(uint32_t page_id, pager_->AllocatePage());
    if (span == 0) entry.first_page = page_id;
    XST_ASSIGN_OR_RAISE(Page * page, pager_->FetchPage(page_id));
    if (chunk > 0) {
      Result<uint32_t> slot = page->AddRecord(std::string_view(bytes).substr(offset, chunk));
      if (!slot.ok()) return slot.status();
    }
    XST_RETURN_NOT_OK(pager_->MarkDirty(page_id));
    offset += chunk;
    ++span;
  } while (offset < bytes.size());
  entry.page_span = span;
  return entry;
}

Result<std::string> SetStore::ReadBlob(const CatalogEntry& entry) {
  std::string bytes;
  bytes.reserve(entry.byte_length);
  for (uint32_t i = 0; i < entry.page_span; ++i) {
    XST_ASSIGN_OR_RAISE(Page * page, pager_->FetchPage(entry.first_page + i));
    if (page->slot_count() == 0) continue;  // empty blob chunk
    XST_ASSIGN_OR_RAISE(std::string_view record, page->GetRecord(0));
    bytes.append(record);
  }
  if (bytes.size() != entry.byte_length) {
    return Status::Corruption("blob length mismatch: expected " +
                              std::to_string(entry.byte_length) + ", got " +
                              std::to_string(bytes.size()));
  }
  return bytes;
}

Status SetStore::PersistCatalog() {
  // Write the catalog blob first, then swap the superblock pointer — the
  // order that keeps a crash from orphaning anything but garbage pages.
  std::string encoded = EncodeXSetToString(catalog_.ToXSet());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, WriteBlob(encoded));
  XSet pointer = XSet::Pair(XSet::Int(entry.first_page),
                            XSet::Int(static_cast<int64_t>(entry.byte_length)));
  XSet with_span = XSet::Pair(pointer, XSet::Int(entry.page_span));
  std::string superblock_record = EncodeXSetToString(with_span);

  XST_ASSIGN_OR_RAISE(Page * superblock, pager_->FetchPage(0));
  *superblock = Page();  // reset: the superblock holds exactly one record
  Result<uint32_t> slot = superblock->AddRecord(superblock_record);
  if (!slot.ok()) return slot.status();
  XST_RETURN_NOT_OK(pager_->MarkDirty(0));
  return pager_->Flush();
}

Status SetStore::LoadCatalog() {
  XST_ASSIGN_OR_RAISE(Page * superblock, pager_->FetchPage(0));
  XST_ASSIGN_OR_RAISE(std::string_view record, superblock->GetRecord(0));
  XST_ASSIGN_OR_RAISE(XSet with_span, DecodeXSetWhole(record));
  XST_ASSIGN_OR_RAISE(XSet pointer, TupleGet(with_span, 1));
  XST_ASSIGN_OR_RAISE(XSet span_val, TupleGet(with_span, 2));
  XST_ASSIGN_OR_RAISE(XSet first_val, TupleGet(pointer, 1));
  XST_ASSIGN_OR_RAISE(XSet len_val, TupleGet(pointer, 2));
  if (!first_val.is_int() || !len_val.is_int() || !span_val.is_int()) {
    return Status::Corruption("superblock pointer is not numeric");
  }
  CatalogEntry entry;
  entry.first_page = static_cast<uint32_t>(first_val.int_value());
  entry.page_span = static_cast<uint32_t>(span_val.int_value());
  entry.byte_length = static_cast<uint64_t>(len_val.int_value());
  XST_ASSIGN_OR_RAISE(std::string encoded, ReadBlob(entry));
  XST_ASSIGN_OR_RAISE(XSet repr, DecodeXSetWhole(encoded));
  XST_ASSIGN_OR_RAISE(catalog_, Catalog::FromXSet(repr));
  return Status::OK();
}

Status SetStore::Put(const std::string& name, const XSet& value) {
  if (name.empty()) return Status::Invalid("set names must be non-empty");
  std::string encoded = EncodeXSetToString(value);
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, WriteBlob(encoded));
  catalog_.Put(name, entry);
  return PersistCatalog();
}

Status SetStore::PutBatch(const std::vector<std::pair<std::string, XSet>>& entries) {
  // Validate up front: the batch must be all-or-nothing, so no partial
  // catalog mutation may happen after the first write.
  std::unordered_set<std::string> seen;
  for (const auto& [name, value] : entries) {
    (void)value;
    if (name.empty()) return Status::Invalid("set names must be non-empty");
    if (!seen.insert(name).second) {
      return Status::Invalid("PutBatch: duplicate name '" + name + "' in batch");
    }
  }
  Catalog staged = catalog_;
  for (const auto& [name, value] : entries) {
    std::string encoded = EncodeXSetToString(value);
    XST_ASSIGN_OR_RAISE(CatalogEntry entry, WriteBlob(encoded));
    staged.Put(name, entry);
  }
  catalog_ = std::move(staged);
  return PersistCatalog();  // the single commit point
}

Result<size_t> SetStore::Scrub() {
  size_t verified = 0;
  for (const std::string& name : catalog_.Names()) {
    Result<XSet> value = Get(name);
    if (!value.ok()) {
      return value.status().WithContext("scrub: set '" + name + "'");
    }
    ++verified;
  }
  return verified;
}

Result<XSet> SetStore::Get(const std::string& name) {
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  XST_ASSIGN_OR_RAISE(std::string encoded, ReadBlob(entry));
  Result<XSet> decoded = DecodeXSetWhole(encoded);
  if (!decoded.ok()) return decoded.status().WithContext("set '" + name + "'");
  return decoded;
}

Status SetStore::Delete(const std::string& name) {
  XST_RETURN_NOT_OK(catalog_.Remove(name));
  return PersistCatalog();
}

Status SetStore::Compact() {
  // Rewrite live blobs into a sibling file, then swap it in.
  const std::string tmp_path = path_ + ".compact";
  std::remove(tmp_path.c_str());
  {
    XST_ASSIGN_OR_RAISE(std::unique_ptr<SetStore> fresh, SetStore::Open(tmp_path));
    for (const std::string& name : catalog_.Names()) {
      XST_ASSIGN_OR_RAISE(XSet value, Get(name));
      XST_RETURN_NOT_OK(fresh->Put(name, value));
    }
    XST_RETURN_NOT_OK(fresh->Flush());
  }
  XST_RETURN_NOT_OK(Flush());
  pager_.reset();  // close our file before replacing it
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return Status::IOError("rename during compaction failed");
  }
  XST_ASSIGN_OR_RAISE(pager_, Pager::Open(path_));
  return LoadCatalog();
}

}  // namespace xst
