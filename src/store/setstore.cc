#include "src/store/setstore.h"

#include <cstdio>
#include <map>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/macros.h"
#include "src/core/order.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ops/tuple.h"
#include "src/store/codec.h"
#include "src/store/cursor.h"

namespace xst {

namespace {

// A conservative per-page chunk budget: page free space for the first record
// of a fresh page.
size_t ChunkCapacity() {
  static const size_t capacity = Page().FreeSpace();
  return capacity;
}

BTreeInfo IndexInfoOf(const CatalogEntry& entry) {
  return BTreeInfo{entry.first_page, entry.page_span, entry.byte_length};
}

CatalogEntry IndexEntryOf(const BTreeInfo& info) {
  CatalogEntry entry;
  entry.first_page = info.root;
  entry.page_span = info.height;
  entry.byte_length = info.member_count;
  entry.kind = CatalogEntry::kKindIndex;
  return entry;
}

// Process-wide WAL lifecycle metrics (the per-record ones live in wal.cc).
obs::Counter& CheckpointsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      internal::kWalCheckpointsCounter);
  return c;
}
obs::Counter& CheckpointFailuresCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      internal::kWalCheckpointFailuresCounter);
  return c;
}
obs::Counter& RecoveryReplayedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      internal::kWalRecoveryReplayedCounter);
  return c;
}

}  // namespace

Result<std::unique_ptr<Pager>> SetStore::OpenPager(const std::string& path) const {
  Result<std::unique_ptr<File>> file =
      options_.file_factory ? options_.file_factory(path) : StdioFile::Open(path);
  if (!file.ok()) return file.status();
  return Pager::Open(std::move(*file), options_.buffer_pool_pages, path,
                     options_.pager_latch_shards);
}

Result<SetStore::ReadView> SetStore::CaptureView(const std::string* name) const {
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  ReadView view;
  view.pager = pager_;
  view.epoch = mutation_epoch_;
  if (name != nullptr) {
    XST_ASSIGN_OR_RAISE(view.entry, catalog_.Get(*name));
  }
  return view;
}

bool SetStore::ValidateView(const ReadView& view) const {
  MutexLock lock(&mu_);
  return pager_ != nullptr && pager_.get() == view.pager.get() &&
         mutation_epoch_ == view.epoch;
}

Status SetStore::CheckOpen() const {
  if (pager_ == nullptr) {
    return Status::IOError("store '" + path_ +
                           "' is closed (a failure-recovery reopen failed); "
                           "reopen it from the path");
  }
  return Status::OK();
}

Result<std::unique_ptr<SetStore>> SetStore::Open(const std::string& path,
                                                 const SetStoreOptions& options) {
  std::unique_ptr<SetStore> store(new SetStore(path, options));
  WalOptions wal_options;
  wal_options.file_factory = options.file_factory;
  XST_ASSIGN_OR_RAISE(store->wal_,
                      Wal::Open(path + ".wal", std::move(wal_options)));
  // A crash after a commit fsync but before a checkpoint left committed page
  // images only in the log; fold them into the main file before the pager
  // sees it.
  XST_RETURN_NOT_OK(store->ReplayRecoveredImages());
  Result<uint64_t> fresh_lsn = 0;
  {
    // Nobody else can reach the fresh store yet, but its guarded fields
    // still demand the capability — and a one-time uncontended lock is free.
    MutexLock lock(&store->mu_);
    XST_ASSIGN_OR_RAISE(store->pager_, store->OpenPager(path));
    store->pager_->AttachWal(store->wal_.get());
    if (store->pager_->page_count() == 0) {
      // Fresh store: the superblock + empty catalog are themselves the
      // store's first WAL transaction.
      store->wal_->BeginTxn();
      {
        XST_ASSIGN_OR_RAISE(PageRef superblock, store->pager_->AllocatePage());
        // The sizeof-based XST_DCHECK counts as a use even under NDEBUG, so
        // no (void) cast is needed to silence -Wunused-variable.
        XST_DCHECK(superblock.id() == 0);
      }
      fresh_lsn = store->CommitLocked(store->catalog_);
      if (!fresh_lsn.ok()) return fresh_lsn.status();
    } else {
      XST_RETURN_NOT_OK(store->LoadCatalog());
    }
  }
  if (*fresh_lsn > 0) XST_RETURN_NOT_OK(store->wal_->WaitDurable(*fresh_lsn));
  return store;
}

SetStore::~SetStore() {
  MutexLock lock(&mu_);
  if (pager_ == nullptr || wal_ == nullptr) return;
  // Deliberate drops: a destructor has no error channel, and every
  // acknowledged commit is already durable in the log — at worst the next
  // Open replays instead of starting clean.
  if (options_.checkpoint_on_close) {
    (void)CheckpointLocked();
  } else {
    (void)wal_->FlushAll();
  }
}

Status SetStore::ReplayRecoveredImages() {
  std::map<uint32_t, std::string> images = wal_->TakeRecoveredImages();
  if (images.empty()) return Status::OK();
  XST_TRACE_SPAN("wal.recovery");
  Result<std::unique_ptr<File>> file =
      options_.file_factory ? options_.file_factory(path_) : StdioFile::Open(path_);
  if (!file.ok()) return file.status().WithContext("wal recovery " + path_);
  XST_ASSIGN_OR_RAISE(uint64_t size, (*file)->Size());
  // A crash mid-checkpoint can tear the main file's last page; when the log
  // holds that page's image the torn bytes are about to be overwritten, so
  // trim to a whole-page size first (Pager::Open insists on one).
  if (size % kPageSize != 0 &&
      images.count(static_cast<uint32_t>(size / kPageSize)) > 0) {
    Status st = (*file)->Truncate(size - size % kPageSize);
    if (!st.ok()) return st.WithContext("wal recovery " + path_);
  }
  for (const auto& [page_id, image] : images) {
    Status st = (*file)->WriteAt(static_cast<uint64_t>(page_id) * kPageSize,
                                 image.data(), image.size());
    if (!st.ok()) {
      return st.WithContext("wal recovery page " + std::to_string(page_id));
    }
  }
  Status st = (*file)->Flush();
  if (!st.ok()) return st.WithContext("wal recovery " + path_);
  file->reset();
  RecoveryReplayedCounter().Add(images.size());
  // The main file is self-contained now; recycle the segment. Crash-safe:
  // until the reset's fresh header is durable, a re-crash just replays the
  // same images again (redo is idempotent).
  return wal_->Reset(wal_->stats().durable_lsn)
      .WithContext("wal recovery reset " + path_);
}

Result<CatalogEntry> SetStore::WriteBlob(const std::string& bytes) {
  CatalogEntry entry;
  entry.byte_length = bytes.size();
  size_t offset = 0;
  uint32_t span = 0;
  do {
    size_t chunk = std::min(ChunkCapacity(), bytes.size() - offset);
    // AllocatePage returns the frame pinned and already dirty; the pin drops
    // at the end of each iteration, so even a capacity-1 pool makes progress.
    XST_ASSIGN_OR_RAISE(PageRef page, pager_->AllocatePage());
    if (span == 0) entry.first_page = page.id();
    if (chunk > 0) {
      // Content goes in under the shard latch (PageWriteGuard) so the frame
      // is never observed half-written by a concurrent reader's in-pool
      // copy or eviction spill.
      PageWriteGuard guard(page);
      Result<uint32_t> slot = guard->AddRecord(std::string_view(bytes).substr(offset, chunk));
      if (!slot.ok()) return slot.status();
    }
    offset += chunk;
    ++span;
  } while (offset < bytes.size());
  entry.page_span = span;
  return entry;
}

Result<std::string> SetStore::ReadBlobFrom(Pager& pager, const CatalogEntry& entry) {
  std::string bytes;
  bytes.reserve(entry.byte_length);
  Page snapshot;
  for (uint32_t i = 0; i < entry.page_span; ++i) {
    // Snapshot reads: each page is copied under its shard latch (no pin
    // taken), so this streams safely with no store lock held — the record
    // view below aliases our private copy, never a shared frame.
    XST_RETURN_NOT_OK(pager.ReadPageSnapshot(entry.first_page + i, &snapshot));
    if (snapshot.slot_count() == 0) continue;  // empty blob chunk
    XST_ASSIGN_OR_RAISE(std::string_view record, snapshot.GetRecord(0));
    bytes.append(record);
  }
  if (bytes.size() != entry.byte_length) {
    return Status::Corruption("blob length mismatch: expected " +
                              std::to_string(entry.byte_length) + ", got " +
                              std::to_string(bytes.size()));
  }
  return bytes;
}

Result<XSet> SetStore::DecodeBlobSet(Pager& pager, const std::string& name,
                                     const CatalogEntry& entry) {
  XST_ASSIGN_OR_RAISE(std::string encoded, ReadBlobFrom(pager, entry));
  Result<XSet> decoded = DecodeXSetWhole(encoded);
  if (!decoded.ok()) return decoded.status().WithContext("set '" + name + "'");
  return decoded;
}

Status SetStore::StageCatalog(const Catalog& staged) {
  // Write the catalog blob first, then swap the superblock pointer — the
  // order that keeps a half-applied transaction from referencing anything
  // but garbage pages. Pool-only: the WAL commit that follows makes it
  // durable; the main file is untouched until checkpoint.
  std::string encoded = EncodeXSetToString(staged.ToXSet());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, WriteBlob(encoded));
  XSet pointer = XSet::Pair(XSet::Int(entry.first_page),
                            XSet::Int(static_cast<int64_t>(entry.byte_length)));
  XSet with_span = XSet::Pair(pointer, XSet::Int(entry.page_span));
  std::string superblock_record = EncodeXSetToString(with_span);

  XST_ASSIGN_OR_RAISE(PageRef superblock, pager_->FetchPage(0));
  PageWriteGuard guard(superblock);  // marks dirty on scope exit
  *guard = Page();  // reset: the superblock holds exactly one record
  Result<uint32_t> slot = guard->AddRecord(superblock_record);
  if (!slot.ok()) return slot.status();
  return Status::OK();
}

Status SetStore::ValidateBlobRange(const std::string& what, int64_t first_page,
                                   int64_t page_span, int64_t byte_length) const {
  const int64_t page_count = pager_->page_count();
  const auto fail = [&](const std::string& detail) {
    return Status::Corruption(what + ": " + detail + " (first_page=" +
                              std::to_string(first_page) +
                              ", page_span=" + std::to_string(page_span) +
                              ", byte_length=" + std::to_string(byte_length) +
                              ", file has " + std::to_string(page_count) + " pages)");
  };
  // Page 0 is the superblock, so every blob lives in [1, page_count).
  if (first_page < 1) return fail("first page out of range");
  if (page_span < 1) return fail("page span out of range");
  if (byte_length < 0) return fail("negative byte length");
  if (first_page > page_count - page_span) return fail("page range beyond end of file");
  // page_span < page_count here, so the product cannot overflow.
  if (byte_length > page_span * static_cast<int64_t>(ChunkCapacity())) {
    return fail("byte length exceeds what the page span can hold");
  }
  return Status::OK();
}

Status SetStore::LoadCatalog() {
  XSet with_span = XSet::Empty();
  {
    // Scoped pin: the superblock must be unpinned before ReadBlob below, or
    // a capacity-1 pool could never load its own catalog.
    XST_ASSIGN_OR_RAISE(PageRef superblock, pager_->FetchPage(0));
    XST_ASSIGN_OR_RAISE(std::string_view record, superblock->GetRecord(0));
    XST_ASSIGN_OR_RAISE(with_span, DecodeXSetWhole(record));
  }
  XST_ASSIGN_OR_RAISE(XSet pointer, TupleGet(with_span, 1));
  XST_ASSIGN_OR_RAISE(XSet span_val, TupleGet(with_span, 2));
  XST_ASSIGN_OR_RAISE(XSet first_val, TupleGet(pointer, 1));
  XST_ASSIGN_OR_RAISE(XSet len_val, TupleGet(pointer, 2));
  if (!first_val.is_int() || !len_val.is_int() || !span_val.is_int()) {
    return Status::Corruption("superblock pointer is not numeric");
  }
  // Validate before any narrowing cast: a negative or oversized value must
  // surface here as Corruption, not wrap into a bogus page fetch or a
  // confusing blob-length mismatch downstream.
  XST_RETURN_NOT_OK(ValidateBlobRange("superblock catalog pointer",
                                      first_val.int_value(), span_val.int_value(),
                                      len_val.int_value()));
  CatalogEntry entry;
  entry.first_page = static_cast<uint32_t>(first_val.int_value());
  entry.page_span = static_cast<uint32_t>(span_val.int_value());
  entry.byte_length = static_cast<uint64_t>(len_val.int_value());
  XST_ASSIGN_OR_RAISE(std::string encoded, ReadBlobFrom(*pager_, entry));
  XST_ASSIGN_OR_RAISE(XSet repr, DecodeXSetWhole(encoded));
  XST_ASSIGN_OR_RAISE(Catalog loaded, Catalog::FromXSet(repr));
  for (const std::string& name : loaded.Names()) {
    CatalogEntry e = *loaded.Get(name);
    if (e.kind == CatalogEntry::kKindIndex) {
      XST_RETURN_NOT_OK(ValidateIndexRange("catalog entry '" + name + "'", e));
    } else {
      XST_RETURN_NOT_OK(ValidateBlobRange("catalog entry '" + name + "'",
                                          static_cast<int64_t>(e.first_page),
                                          static_cast<int64_t>(e.page_span),
                                          static_cast<int64_t>(e.byte_length)));
    }
  }
  catalog_ = std::move(loaded);
  return Status::OK();
}

Status SetStore::ReopenPagerLocked() {
  // The identity swap alone invalidates views, but bump the epoch too so
  // every invalidation path looks the same to a validator.
  ++mutation_epoch_;
  pager_.reset();
  Result<std::unique_ptr<Pager>> pager = OpenPager(path_);
  if (!pager.ok()) return pager.status();  // pager_ stays null: store closed
  pager_ = std::move(*pager);
  pager_->AttachWal(wal_.get());
  Status st = LoadCatalog();
  if (!st.ok()) {
    // Never serve the old catalog against state we could not load from —
    // its page references may decode to the wrong data. Close instead.
    pager_.reset();
    return st;
  }
  return Status::OK();
}

Status SetStore::AbortResidentLocked() {
  wal_->AbortTxn();
  // Pool frames may still hold the aborted transaction's content; a fresh
  // pager rereads everything through the log's committed table + main file.
  return ReopenPagerLocked();
}

Status SetStore::FailTxnLocked(Status cause) {
  Status aborted = AbortResidentLocked();
  if (!aborted.ok()) return aborted.WithContext("abort after failed mutation");
  return cause;
}

Status SetStore::RecoverDurableLocked() {
  Status st = wal_->RecoverResidentFromDisk();
  if (!st.ok()) {
    pager_.reset();  // resident state is unknowable; close the store
    return st;
  }
  return ReopenPagerLocked();
}

Result<uint64_t> SetStore::CommitLocked(Catalog staged) {
  Status st = StageCatalog(staged);
  if (!st.ok()) return FailTxnLocked(std::move(st));
  st = pager_->DrainUnloggedToWal();
  if (!st.ok()) return FailTxnLocked(std::move(st));
  Result<uint64_t> lsn = wal_->AppendCommit();
  if (!lsn.ok()) return FailTxnLocked(lsn.status());
  catalog_ = std::move(staged);
  if (!options_.wal_group_commit) {
    // Serialized durability: fsync before releasing the store lock — the
    // baseline bench_wal compares group commit against.
    Status durable = wal_->WaitDurable(*lsn);
    if (!durable.ok()) {
      Status recovered = RecoverDurableLocked();
      if (!recovered.ok()) {
        return recovered.WithContext("recover after failed commit");
      }
      return durable;
    }
  }
  return lsn;
}

Status SetStore::FinishCommit(const Result<uint64_t>& lsn) {
  if (!lsn.ok()) return lsn.status();
  if (*lsn == 0) return Status::OK();  // logical no-op: nothing was appended
  if (options_.wal_group_commit) {
    Status durable = wal_->WaitDurable(*lsn);
    if (!durable.ok()) {
      // The commit record never became durable, so the caller must NOT see
      // its effects: fall back to the on-disk durable prefix. Idempotent,
      // so concurrent failed committers can each run it. A reader that
      // slipped in between CommitLocked and this rollback may have observed
      // the now-discarded commit — the documented group-commit isolation
      // caveat (setstore.h): reads see latest-appended, not latest-durable.
      MutexLock lock(&mu_);
      if (pager_ != nullptr) {
        Status recovered = RecoverDurableLocked();
        if (!recovered.ok()) {
          return recovered.WithContext("recover after failed commit");
        }
      }
      return durable;
    }
  }
  MaybeCheckpoint();
  return Status::OK();
}

Status SetStore::CheckpointLocked() {
  XST_RETURN_NOT_OK(CheckOpen());
  XST_TRACE_SPAN("store.checkpoint");
  // Conservative: checkpointing never changes logical content, but it moves
  // page images between the log and the main file; invalidating in-flight
  // optimistic reads sidesteps every cache-coherence corner of that window.
  ++mutation_epoch_;
  // Order is everything: log durable → images into the main file → main
  // file fsync → only then recycle the segment. A crash between any two
  // steps leaves the log authoritative and replay idempotent.
  XST_RETURN_NOT_OK(wal_->FlushAll());
  const uint64_t durable = wal_->stats().durable_lsn;
  for (const auto& [page_id, image] : wal_->SnapshotResident()) {
    XST_RETURN_NOT_OK(pager_->ApplyCheckpointImage(page_id, image));
  }
  XST_RETURN_NOT_OK(pager_->SyncFile());
  XST_RETURN_NOT_OK(wal_->Reset(durable));
  CheckpointsCounter().Increment();
  checkpoint_failure_streak_ = 0;
  return Status::OK();
}

void SetStore::MaybeCheckpoint() {
  if (wal_->stats().segment_bytes < options_.wal_checkpoint_bytes) return;
  MutexLock lock(&mu_);
  if (pager_ == nullptr) return;
  if (wal_->stats().segment_bytes < options_.wal_checkpoint_bytes) return;
  // The commit being acknowledged is already durable, so its Status must
  // stay OK — but a checkpoint failure must not vanish either: it means the
  // log cannot be recycled and grows past its bound until the device
  // recovers (a failure at the segment-reset step additionally poisons the
  // log, failing later commits). Count every failure and log with
  // power-of-two backoff, since a persistently failing device (say
  // main-file ENOSPC) would otherwise retry — and spam — once per commit.
  Status st = CheckpointLocked();
  if (st.ok()) return;
  CheckpointFailuresCounter().Increment();
  const uint64_t streak = ++checkpoint_failure_streak_;
  if ((streak & (streak - 1)) == 0) {
    std::fprintf(stderr,
                 "xst: wal checkpoint of '%s' failed (%llu consecutive, log "
                 "at %llu bytes): %s\n",
                 path_.c_str(), static_cast<unsigned long long>(streak),
                 static_cast<unsigned long long>(wal_->stats().segment_bytes),
                 st.ToString().c_str());
  }
}

Status SetStore::Checkpoint() {
  MutexLock lock(&mu_);
  return CheckpointLocked();
}

Status SetStore::Put(const std::string& name, const XSet& value) {
  XST_TRACE_SPAN("store.put");
  Result<uint64_t> lsn = Status::Invalid("unset");
  {
    MutexLock lock(&mu_);
    lsn = PutLocked(name, value);
  }
  return FinishCommit(lsn);
}

Result<uint64_t> SetStore::PutLocked(const std::string& name, const XSet& value) {
  XST_RETURN_NOT_OK(CheckOpen());
  ++mutation_epoch_;  // invalidate in-flight optimistic reads
  if (name.empty()) return Status::Invalid("set names must be non-empty");
  std::string encoded = EncodeXSetToString(value);
  wal_->BeginTxn();
  Result<CatalogEntry> entry = WriteBlob(encoded);
  if (!entry.ok()) return FailTxnLocked(entry.status());
  // Stage-then-commit: the in-memory catalog only advances once the commit
  // record is appended, so a failed put leaves resident state untouched.
  Catalog staged = catalog_;
  staged.Put(name, *entry);
  return CommitLocked(std::move(staged));
}

Status SetStore::PutBatch(const std::vector<std::pair<std::string, XSet>>& entries) {
  XST_TRACE_SPAN("store.put_batch");
  Result<uint64_t> lsn = Status::Invalid("unset");
  {
    MutexLock lock(&mu_);
    lsn = PutBatchLocked(entries);
  }
  return FinishCommit(lsn);
}

Result<uint64_t> SetStore::PutBatchLocked(
    const std::vector<std::pair<std::string, XSet>>& entries) {
  XST_RETURN_NOT_OK(CheckOpen());
  ++mutation_epoch_;  // invalidate in-flight optimistic reads
  // Validate up front: the batch must be all-or-nothing, so no partial
  // catalog mutation may happen after the first write.
  std::unordered_set<std::string> seen;
  for (const auto& [name, value] : entries) {
    (void)value;
    if (name.empty()) return Status::Invalid("set names must be non-empty");
    if (!seen.insert(name).second) {
      return Status::Invalid("PutBatch: duplicate name '" + name + "' in batch");
    }
  }
  wal_->BeginTxn();
  Catalog staged = catalog_;
  for (const auto& [name, value] : entries) {
    std::string encoded = EncodeXSetToString(value);
    Result<CatalogEntry> entry = WriteBlob(encoded);
    if (!entry.ok()) return FailTxnLocked(entry.status());
    staged.Put(name, *entry);
  }
  return CommitLocked(std::move(staged));  // the single commit point
}

Result<size_t> SetStore::Scrub() {
  XST_TRACE_SPAN("store.scrub");
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  size_t verified = 0;
  for (const std::string& name : catalog_.Names()) {
    XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
    if (entry.kind == CatalogEntry::kKindIndex) {
      Status valid = ValidateBTree(*pager_, IndexInfoOf(entry));
      if (!valid.ok()) return valid.WithContext("scrub: set '" + name + "'");
    }
    Result<XSet> value = GetLocked(name);
    if (!value.ok()) {
      return value.status().WithContext("scrub: set '" + name + "'");
    }
    ++verified;
  }
  return verified;
}

Result<XSet> SetStore::Get(const std::string& name) {
  XST_TRACE_SPAN("store.get");
  if (!options_.serialize_reads) {
    // Optimistic read: capture a view, stream pages with no store lock
    // held, and return the result only if nothing invalidated the view.
    // Bounded retries, then the coarse path below guarantees progress.
    for (int attempt = 0; attempt < 3; ++attempt) {
      XST_ASSIGN_OR_RAISE(ReadView view, CaptureView(&name));
      Result<XSet> value = view.entry.kind == CatalogEntry::kKindIndex
                               ? MaterializeIndex(*view.pager, name, view.entry)
                               : DecodeBlobSet(*view.pager, name, view.entry);
      // An error under an invalidated view may be an artifact of racing a
      // writer; only a validated result (or error) is real.
      if (ValidateView(view)) return value;
    }
  }
  MutexLock lock(&mu_);
  return GetLocked(name);
}

Result<XSet> SetStore::GetLocked(const std::string& name) {
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind == CatalogEntry::kKindIndex) {
    return MaterializeIndex(*pager_, name, entry);
  }
  return DecodeBlobSet(*pager_, name, entry);
}

Result<XSet> SetStore::MaterializeIndex(Pager& pager, const std::string& name,
                                        const CatalogEntry& entry) {
  const BTreeInfo info = IndexInfoOf(entry);
#if XST_VALIDATE_LEVEL >= 2
  XST_RETURN_NOT_OK(ValidateBTree(pager, info).WithContext("set '" + name + "'"));
#endif
  BTree tree(&pager, info);
  Result<BTreeCursorPos> pos = tree.SeekFirst();
  if (!pos.ok()) return pos.status().WithContext("set '" + name + "'");
  std::vector<Membership> members;
  members.reserve(info.member_count);
  for (;;) {
    Result<bool> more = tree.ReadLeafBatch(&*pos, nullptr, &members);
    if (!more.ok()) return more.status().WithContext("set '" + name + "'");
    if (!*more) break;
  }
  // The leaf walk must agree with the catalog's cardinality and be strictly
  // ascending — a half-applied mutation that reached disk surfaces here as
  // Corruption rather than as a silently wrong set.
  if (members.size() != info.member_count) {
    return Status::Corruption("set '" + name + "': index holds " +
                              std::to_string(members.size()) +
                              " members but the catalog says " +
                              std::to_string(info.member_count));
  }
  if (!IsCanonicalMemberList(members)) {
    return Status::Corruption("set '" + name + "': index leaves out of order");
  }
  XST_DCHECK(IsCanonicalMemberList(members));
  return XSet::FromSortedMembers(std::move(members));
}

Status SetStore::ValidateIndexRange(const std::string& what,
                                    const CatalogEntry& entry) const {
  const auto fail = [&](const std::string& detail) {
    return Status::Corruption(what + ": " + detail +
                              " (root=" + std::to_string(entry.first_page) +
                              ", height=" + std::to_string(entry.page_span) +
                              ", members=" + std::to_string(entry.byte_length) +
                              ", file has " + std::to_string(pager_->page_count()) +
                              " pages)");
  };
  if (entry.first_page < 1 || entry.first_page >= pager_->page_count()) {
    return fail("root page out of range");
  }
  if (entry.page_span < 1 || entry.page_span > kMaxBTreeHeight) {
    return fail("height out of range");
  }
  return Status::OK();
}

Result<uint64_t> SetStore::CommitTreeMutation(const std::string& name,
                                              const BTreeInfo& info) {
#if XST_VALIDATE_LEVEL >= 1
  Status valid = ValidateBTree(*pager_, info);
  if (!valid.ok()) {
    // The mutated tree is structurally wrong in the pool; discard it before
    // a commit could make it real.
    Status aborted = AbortResidentLocked();
    if (!aborted.ok()) {
      return aborted.WithContext("abort after invalid tree '" + name + "'");
    }
    return valid.WithContext("mutated tree '" + name + "'");
  }
#endif
  Catalog staged = catalog_;
  staged.Put(name, IndexEntryOf(info));
  Result<uint64_t> lsn = CommitLocked(std::move(staged));
  if (!lsn.ok()) return lsn.status().WithContext("commit of '" + name + "'");
  return lsn;
}

Status SetStore::PutIndexed(const std::string& name, const XSet& value) {
  XST_TRACE_SPAN("store.put_indexed");
  Result<uint64_t> lsn = Status::Invalid("unset");
  {
    MutexLock lock(&mu_);
    lsn = PutIndexedLocked(name, value);
  }
  return FinishCommit(lsn);
}

Result<uint64_t> SetStore::PutIndexedLocked(const std::string& name,
                                            const XSet& value) {
  XST_RETURN_NOT_OK(CheckOpen());
  ++mutation_epoch_;  // invalidate in-flight optimistic reads
  if (name.empty()) return Status::Invalid("set names must be non-empty");
  if (value.is_atom()) {
    return Status::Invalid("ordered-index storage holds member lists; atom '" +
                           value.ToString() + "' has none (use Put)");
  }
  wal_->BeginTxn();
  Result<BTreeInfo> info = BTree::Build(*pager_, value.members());
  if (!info.ok()) {
    return FailTxnLocked(info.status().WithContext("index build for '" + name + "'"));
  }
  return CommitTreeMutation(name, *info);
}

Status SetStore::InsertMember(const std::string& name, const Membership& m) {
  XST_TRACE_SPAN("store.insert_member");
  Result<uint64_t> lsn = Status::Invalid("unset");
  {
    MutexLock lock(&mu_);
    lsn = InsertMemberLocked(name, m);
  }
  return FinishCommit(lsn);
}

Result<uint64_t> SetStore::InsertMemberLocked(const std::string& name,
                                              const Membership& m) {
  XST_RETURN_NOT_OK(CheckOpen());
  ++mutation_epoch_;  // invalidate in-flight optimistic reads
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind != CatalogEntry::kKindIndex) {
    return Status::Invalid("'" + name +
                           "' is blob-stored; member mutation needs PutIndexed");
  }
  wal_->BeginTxn();
  BTree tree(pager_.get(), IndexInfoOf(entry));
  Result<bool> inserted = tree.Insert(m);
  if (!inserted.ok()) {
    return FailTxnLocked(inserted.status().WithContext("insert into '" + name + "'"));
  }
  if (!*inserted) {
    // Already present: the tree's logical identity is untouched, but the
    // encode path may have dirtied freshly allocated overflow pages before
    // detecting the duplicate. Commit those as unreferenced garbage
    // (Compact reclaims them) so the pool never holds uncommitted dirt with
    // no transaction open; a clean no-op gets the cheap abort.
    if (pager_->HasUnloggedDirty()) return CommitLocked(catalog_);
    wal_->AbortTxn();
    return uint64_t{0};
  }
  return CommitTreeMutation(name, tree.info());
}

Status SetStore::EraseMember(const std::string& name, const Membership& m) {
  XST_TRACE_SPAN("store.erase_member");
  Result<uint64_t> lsn = Status::Invalid("unset");
  {
    MutexLock lock(&mu_);
    lsn = EraseMemberLocked(name, m);
  }
  return FinishCommit(lsn);
}

Result<uint64_t> SetStore::EraseMemberLocked(const std::string& name,
                                             const Membership& m) {
  XST_RETURN_NOT_OK(CheckOpen());
  ++mutation_epoch_;  // invalidate in-flight optimistic reads
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind != CatalogEntry::kKindIndex) {
    return Status::Invalid("'" + name +
                           "' is blob-stored; member mutation needs PutIndexed");
  }
  wal_->BeginTxn();
  BTree tree(pager_.get(), IndexInfoOf(entry));
  Result<bool> erased = tree.Erase(m);
  if (!erased.ok()) {
    return FailTxnLocked(erased.status().WithContext("erase from '" + name + "'"));
  }
  if (!*erased) {
    // Absent member: same no-op discipline as a duplicate insert.
    if (pager_->HasUnloggedDirty()) return CommitLocked(catalog_);
    wal_->AbortTxn();
    return uint64_t{0};
  }
  return CommitTreeMutation(name, tree.info());
}

Result<bool> SetStore::ContainsMember(const std::string& name, const Membership& m) {
  XST_TRACE_SPAN("store.contains_member");
  if (!options_.serialize_reads) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      XST_ASSIGN_OR_RAISE(ReadView view, CaptureView(&name));
      Result<bool> found = [&]() -> Result<bool> {
        if (view.entry.kind == CatalogEntry::kKindIndex) {
          BTree tree(view.pager.get(), IndexInfoOf(view.entry));
          return tree.Contains(m);
        }
        Result<XSet> value = DecodeBlobSet(*view.pager, name, view.entry);
        if (!value.ok()) return value.status();
        for (const Membership& member : value->members()) {
          if (CompareMembership(member, m) == 0) return true;
        }
        return false;
      }();
      if (ValidateView(view)) return found;
    }
  }
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind == CatalogEntry::kKindIndex) {
    BTree tree(pager_.get(), IndexInfoOf(entry));
    return tree.Contains(m);
  }
  XST_ASSIGN_OR_RAISE(XSet value, GetLocked(name));
  for (const Membership& member : value.members()) {
    if (CompareMembership(member, m) == 0) return true;
  }
  return false;
}

Result<StorageMode> SetStore::ModeOf(const std::string& name) const {
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  return entry.kind == CatalogEntry::kKindIndex ? StorageMode::kOrderedIndex
                                                : StorageMode::kBlob;
}

Result<std::unique_ptr<MemberCursor>> SetStore::OpenCursor(const std::string& name) {
  if (!options_.serialize_reads) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      XST_ASSIGN_OR_RAISE(ReadView view, CaptureView(&name));
      if (view.entry.kind == CatalogEntry::kKindIndex) {
#if XST_VALIDATE_LEVEL >= 2
        Status valid = ValidateBTree(*view.pager, IndexInfoOf(view.entry));
        if (!valid.ok()) {
          if (!ValidateView(view)) continue;
          return valid.WithContext("set '" + name + "'");
        }
#endif
        BTree tree(view.pager.get(), IndexInfoOf(view.entry));
        Result<BTreeCursorPos> pos = tree.SeekFirst();
        if (!ValidateView(view)) continue;
        if (!pos.ok()) return pos.status();
        return std::unique_ptr<MemberCursor>(
            new BTreeCursor(*this, *pos, std::nullopt));
      }
      Result<XSet> value = DecodeBlobSet(*view.pager, name, view.entry);
      if (!ValidateView(view)) continue;
      if (!value.ok()) return value.status();
      return std::unique_ptr<MemberCursor>(new StoredSetCursor(std::move(*value)));
    }
  }
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind == CatalogEntry::kKindIndex) {
#if XST_VALIDATE_LEVEL >= 2
    XST_RETURN_NOT_OK(
        ValidateBTree(*pager_, IndexInfoOf(entry)).WithContext("set '" + name + "'"));
#endif
    BTree tree(pager_.get(), IndexInfoOf(entry));
    XST_ASSIGN_OR_RAISE(BTreeCursorPos pos, tree.SeekFirst());
    return std::unique_ptr<MemberCursor>(new BTreeCursor(*this, pos, std::nullopt));
  }
  XST_ASSIGN_OR_RAISE(XSet value, GetLocked(name));
  return std::unique_ptr<MemberCursor>(new StoredSetCursor(std::move(value)));
}

Result<std::unique_ptr<MemberCursor>> SetStore::OpenElementRange(
    const std::string& name, const XSet& lo, const XSet& hi) {
  if (!options_.serialize_reads) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      XST_ASSIGN_OR_RAISE(ReadView view, CaptureView(&name));
      if (view.entry.kind == CatalogEntry::kKindIndex) {
#if XST_VALIDATE_LEVEL >= 2
        Status valid = ValidateBTree(*view.pager, IndexInfoOf(view.entry));
        if (!valid.ok()) {
          if (!ValidateView(view)) continue;
          return valid.WithContext("set '" + name + "'");
        }
#endif
        // Seek the lower edge now; batches then touch only in-range leaves.
        BTree tree(view.pager.get(), IndexInfoOf(view.entry));
        Result<BTreeCursorPos> pos = tree.SeekElement(lo);
        if (!ValidateView(view)) continue;
        if (!pos.ok()) return pos.status();
        return std::unique_ptr<MemberCursor>(new BTreeCursor(*this, *pos, hi));
      }
      Result<XSet> value = DecodeBlobSet(*view.pager, name, view.entry);
      if (!ValidateView(view)) continue;
      if (!value.ok()) return value.status();
      return std::unique_ptr<MemberCursor>(new ElementRangeCursor(
          std::unique_ptr<MemberCursor>(new StoredSetCursor(std::move(*value))), lo,
          hi));
    }
  }
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
  if (entry.kind == CatalogEntry::kKindIndex) {
#if XST_VALIDATE_LEVEL >= 2
    XST_RETURN_NOT_OK(
        ValidateBTree(*pager_, IndexInfoOf(entry)).WithContext("set '" + name + "'"));
#endif
    // Seek the lower edge now; batches then touch only in-range leaves.
    BTree tree(pager_.get(), IndexInfoOf(entry));
    XST_ASSIGN_OR_RAISE(BTreeCursorPos pos, tree.SeekElement(lo));
    return std::unique_ptr<MemberCursor>(new BTreeCursor(*this, pos, hi));
  }
  XST_ASSIGN_OR_RAISE(XSet value, GetLocked(name));
  return std::unique_ptr<MemberCursor>(new ElementRangeCursor(
      std::unique_ptr<MemberCursor>(new StoredSetCursor(std::move(value))), lo, hi));
}

Status SetStore::ReadIndexBatch(BTreeCursorPos* pos, const XSet* hi_element,
                                std::vector<Membership>* out) {
  const size_t before = out->size();
  if (!options_.serialize_reads) {
    const BTreeCursorPos saved = *pos;
    for (int attempt = 0; attempt < 3; ++attempt) {
      XST_ASSIGN_OR_RAISE(ReadView view, CaptureView(nullptr));
      BTree tree(view.pager.get(), BTreeInfo{});  // position-only: root unused
      Status st = Status::OK();
      for (;;) {
        Result<bool> more = tree.ReadLeafBatch(pos, hi_element, out);
        if (!more.ok()) {
          st = more.status();
          break;
        }
        if (!*more || out->size() > before) break;
      }
      if (ValidateView(view)) return st;
      // Invalidated mid-batch: roll the cursor and the output back and
      // retry from the captured position.
      out->resize(before);
      *pos = saved;
    }
  }
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  BTree tree(pager_.get(), BTreeInfo{});  // position-only reads ignore the root
  for (;;) {
    XST_ASSIGN_OR_RAISE(bool more, tree.ReadLeafBatch(pos, hi_element, out));
    if (!more || out->size() > before) return Status::OK();
  }
}

Status SetStore::Delete(const std::string& name) {
  XST_TRACE_SPAN("store.delete");
  Result<uint64_t> lsn = Status::Invalid("unset");
  {
    MutexLock lock(&mu_);
    lsn = DeleteLocked(name);
  }
  return FinishCommit(lsn);
}

Result<uint64_t> SetStore::DeleteLocked(const std::string& name) {
  XST_RETURN_NOT_OK(CheckOpen());
  ++mutation_epoch_;  // invalidate in-flight optimistic reads
  Catalog staged = catalog_;
  XST_RETURN_NOT_OK(staged.Remove(name));  // NotFound before any txn opens
  wal_->BeginTxn();
  return CommitLocked(std::move(staged));
}

Status SetStore::Flush() {
  MutexLock lock(&mu_);
  return FlushLocked();
}

Status SetStore::FlushLocked() {
  XST_RETURN_NOT_OK(CheckOpen());
  return wal_->FlushAll();
}

Status SetStore::CopyLiveTo(const std::string& tmp_path) {
  XST_ASSIGN_OR_RAISE(std::unique_ptr<SetStore> fresh,
                      SetStore::Open(tmp_path, options_));
  for (const std::string& name : catalog_.Names()) {
    XST_ASSIGN_OR_RAISE(CatalogEntry entry, catalog_.Get(name));
    XST_ASSIGN_OR_RAISE(XSet value, GetLocked(name));
    // Preserve the storage mode: an indexed set stays indexed (rebuilt
    // compact, dropping stale nodes and dead overflow chains).
    if (entry.kind == CatalogEntry::kKindIndex) {
      XST_RETURN_NOT_OK(fresh->PutIndexed(name, value));
    } else {
      XST_RETURN_NOT_OK(fresh->Put(name, value));
    }
  }
  // Checkpoint, not flush: the sibling's main file must be self-contained
  // before the rename steals it away from its own log.
  return fresh->Checkpoint();
}

Status SetStore::Compact() {
  XST_TRACE_SPAN("store.compact");
  MutexLock lock(&mu_);
  XST_RETURN_NOT_OK(CheckOpen());
  // Checkpoint FIRST, atomically with the swap (same critical section): the
  // rename must not race committed-but-unapplied log images, or a crash
  // after the swap would replay pre-compaction pages into the compacted
  // file. After this the log segment is empty and stays empty until the
  // reopen below (mu_ blocks every committer).
  XST_RETURN_NOT_OK(CheckpointLocked().WithContext("compact " + path_));
  // Rewrite live blobs into a sibling file, then swap it in.
  const std::string tmp_path = path_ + ".compact";
  std::remove(tmp_path.c_str());
  std::remove((tmp_path + ".wal").c_str());
  Status st = CopyLiveTo(tmp_path);
  if (!st.ok()) {
    // The original file and the resident catalog are untouched; drop the
    // half-written sibling (and its log) and report.
    std::remove(tmp_path.c_str());
    std::remove((tmp_path + ".wal").c_str());
    return st.WithContext("compact " + path_);
  }
  pager_.reset();  // close our file before replacing it
  int rc = options_.rename_fn ? options_.rename_fn(tmp_path.c_str(), path_.c_str())
                              : std::rename(tmp_path.c_str(), path_.c_str());
  if (rc != 0) {
    std::remove(tmp_path.c_str());
    std::remove((tmp_path + ".wal").c_str());
    Status reopened = ReopenPagerLocked();  // the original file is intact
    Status failed = Status::IOError("compact " + path_ + ": rename failed");
    return reopened.ok() ? failed
                         : reopened.WithContext("compact: reopen after failed rename");
  }
  // The sibling's log is empty (CopyLiveTo checkpoints) — drop it rather
  // than leave an orphan next to a renamed-away path.
  std::remove((tmp_path + ".wal").c_str());
  return ReopenPagerLocked().WithContext("compact " + path_ + ": reopen after swap");
}

}  // namespace xst
