#include "src/store/file.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xst {

namespace {

Status IOErrorFromErrno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<File>> StdioFile::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    file = std::fopen(path.c_str(), "w+b");
    if (file == nullptr) return IOErrorFromErrno("open " + path);
  }
  return std::unique_ptr<File>(new StdioFile(file, path));
}

StdioFile::~StdioFile() {
  // Destruction is exclusive by contract, but the guarded field still wants
  // its capability — and an uncontended lock here is free.
  MutexLock lock(&mu_);
  std::fclose(file_);
}

Result<uint64_t> StdioFile::Size() {
  MutexLock lock(&mu_);
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return IOErrorFromErrno("seek " + path_);
  }
  long size = std::ftell(file_);
  if (size < 0) return IOErrorFromErrno("tell " + path_);
  return static_cast<uint64_t>(size);
}

Status StdioFile::ReadAt(uint64_t offset, char* dst, size_t n) {
  // One critical section per operation: the seek+read pair must be atomic
  // against concurrent seeks, and a whole-page read must never interleave
  // with a concurrent whole-page write (the sharded pager reads misses with
  // no latch held and relies on per-operation atomicity here).
  MutexLock lock(&mu_);
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return IOErrorFromErrno("seek " + path_);
  }
  size_t got = std::fread(dst, 1, n, file_);
  if (got != n) {
    if (std::ferror(file_)) return IOErrorFromErrno("read " + path_);
    return Status::IOError("read " + path_ + ": short read (" + std::to_string(got) +
                           " of " + std::to_string(n) + " bytes)");
  }
  return Status::OK();
}

Status StdioFile::WriteAt(uint64_t offset, const char* src, size_t n) {
  MutexLock lock(&mu_);
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return IOErrorFromErrno("seek " + path_);
  }
  size_t put = std::fwrite(src, 1, n, file_);
  if (put != n) {
    if (std::ferror(file_)) return IOErrorFromErrno("write " + path_);
    return Status::IOError("write " + path_ + ": short write (" + std::to_string(put) +
                           " of " + std::to_string(n) + " bytes)");
  }
  return Status::OK();
}

Status StdioFile::Flush() {
  MutexLock lock(&mu_);
  if (std::fflush(file_) != 0) return IOErrorFromErrno("fflush " + path_);
  return Status::OK();
}

Status StdioFile::Truncate(uint64_t size) {
  MutexLock lock(&mu_);
  // Drain stdio's buffer first so ftruncate sees every logical write, then
  // cut the descriptor. A subsequent fseek repositions the stream.
  if (std::fflush(file_) != 0) return IOErrorFromErrno("fflush " + path_);
  if (ftruncate(fileno(file_), static_cast<off_t>(size)) != 0) {
    return IOErrorFromErrno("truncate " + path_);
  }
  return Status::OK();
}

}  // namespace xst
