#include "src/store/fault_file.h"

namespace xst {

Status FaultFile::ReadAt(uint64_t offset, char* dst, size_t n) {
  if (Scheduled()) {
    int64_t index = state_->reads++;
    if (index == state_->fail_read) {
      state_->triggered = true;
      return Status::IOError("injected fault: read #" + std::to_string(index));
    }
  }
  return base_->ReadAt(offset, dst, n);
}

Status FaultFile::WriteAt(uint64_t offset, const char* src, size_t n) {
  if (!Scheduled()) {
    if (state_->device_failed) {
      return Status::IOError("injected fault: device failed");
    }
    return base_->WriteAt(offset, src, n);
  }
  int64_t index = state_->writes++;
  if (state_->device_failed) {
    return Status::IOError("injected fault: device failed");
  }
  if (index == state_->fail_write) {
    state_->triggered = true;
    if (!state_->transient) state_->device_failed = true;
    size_t landed = 0;
    switch (state_->write_fault) {
      case FaultState::WriteFault::kFailCleanly:
        break;
      case FaultState::WriteFault::kShortWrite:
        landed = n / 3;
        break;
      case FaultState::WriteFault::kTornWrite:
        landed = n / 2;
        break;
    }
    if (landed > 0) {
      base_->WriteAt(offset, src, landed).ok();  // best effort
      state_->bytes_written += static_cast<int64_t>(landed);
    }
    return Status::IOError("injected fault: write #" + std::to_string(index) +
                           " (wrote " + std::to_string(landed) + " of " +
                           std::to_string(n) + " bytes)");
  }
  if (state_->fail_write_at_byte >= 0) {
    int64_t budget = state_->fail_write_at_byte - state_->bytes_written;
    if (budget <= static_cast<int64_t>(n)) {
      // This write crosses (or lands exactly on) the crash point: the
      // prefix up to the boundary reaches the device, nothing after.
      state_->triggered = true;
      state_->device_failed = true;
      size_t landed = budget > 0 ? static_cast<size_t>(budget) : 0;
      if (landed > 0) {
        base_->WriteAt(offset, src, landed).ok();  // best effort
        state_->bytes_written += static_cast<int64_t>(landed);
      }
      return Status::IOError("injected fault: crash at byte offset " +
                             std::to_string(state_->fail_write_at_byte) +
                             " (wrote " + std::to_string(landed) + " of " +
                             std::to_string(n) + " bytes)");
    }
  }
  Status st = base_->WriteAt(offset, src, n);
  if (st.ok()) state_->bytes_written += static_cast<int64_t>(n);
  return st;
}

Status FaultFile::Flush() {
  if (!Scheduled()) {
    if (state_->device_failed) {
      return Status::IOError("injected fault: device failed");
    }
    return base_->Flush();
  }
  int64_t index = state_->flushes++;
  if (state_->device_failed) {
    return Status::IOError("injected fault: device failed");
  }
  if (index == state_->fail_flush) {
    state_->triggered = true;
    if (!state_->transient) state_->device_failed = true;
    return Status::IOError("injected fault: flush #" + std::to_string(index));
  }
  return base_->Flush();
}

Status FaultFile::Truncate(uint64_t size) {
  if (!Scheduled()) {
    if (state_->device_failed) {
      return Status::IOError("injected fault: device failed");
    }
    return base_->Truncate(size);
  }
  // Truncate mutates the device, so it rides the write schedule; a
  // scheduled truncate always fails cleanly (there is no partial truncate
  // shape worth modeling).
  int64_t index = state_->writes++;
  if (state_->device_failed) {
    return Status::IOError("injected fault: device failed");
  }
  if (index == state_->fail_write) {
    state_->triggered = true;
    if (!state_->transient) state_->device_failed = true;
    return Status::IOError("injected fault: truncate as write #" +
                           std::to_string(index));
  }
  return base_->Truncate(size);
}

FileFactory FaultFileFactory(std::shared_ptr<FaultState> state) {
  return [state](const std::string& path) -> Result<std::unique_ptr<File>> {
    Result<std::unique_ptr<File>> base = StdioFile::Open(path);
    if (!base.ok()) return base.status();
    return std::unique_ptr<File>(
        new FaultFile(std::move(*base), state, path));
  };
}

}  // namespace xst
