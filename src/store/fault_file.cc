#include "src/store/fault_file.h"

namespace xst {

Status FaultFile::ReadAt(uint64_t offset, char* dst, size_t n) {
  int64_t index = state_->reads++;
  if (index == state_->fail_read) {
    state_->triggered = true;
    return Status::IOError("injected fault: read #" + std::to_string(index));
  }
  return base_->ReadAt(offset, dst, n);
}

Status FaultFile::WriteAt(uint64_t offset, const char* src, size_t n) {
  int64_t index = state_->writes++;
  if (state_->device_failed) {
    return Status::IOError("injected fault: device failed");
  }
  if (index != state_->fail_write) {
    return base_->WriteAt(offset, src, n);
  }
  state_->triggered = true;
  state_->device_failed = true;
  size_t landed = 0;
  switch (state_->write_fault) {
    case FaultState::WriteFault::kFailCleanly:
      break;
    case FaultState::WriteFault::kShortWrite:
      landed = n / 3;
      break;
    case FaultState::WriteFault::kTornWrite:
      landed = n / 2;
      break;
  }
  if (landed > 0) base_->WriteAt(offset, src, landed).ok();  // best effort
  return Status::IOError("injected fault: write #" + std::to_string(index) +
                         " (wrote " + std::to_string(landed) + " of " +
                         std::to_string(n) + " bytes)");
}

Status FaultFile::Flush() {
  int64_t index = state_->flushes++;
  if (state_->device_failed) {
    return Status::IOError("injected fault: device failed");
  }
  if (index == state_->fail_flush) {
    state_->triggered = true;
    state_->device_failed = true;
    return Status::IOError("injected fault: flush #" + std::to_string(index));
  }
  return base_->Flush();
}

FileFactory FaultFileFactory(std::shared_ptr<FaultState> state) {
  return [state](const std::string& path) -> Result<std::unique_ptr<File>> {
    Result<std::unique_ptr<File>> base = StdioFile::Open(path);
    if (!base.ok()) return base.status();
    return std::unique_ptr<File>(
        new FaultFile(std::move(*base), state));
  };
}

}  // namespace xst
