#include "src/store/codec.h"

namespace xst {

namespace {

constexpr uint8_t kTagEmpty = 0x00;
constexpr uint8_t kTagInt = 0x01;
constexpr uint8_t kTagSymbol = 0x02;
constexpr uint8_t kTagString = 0x03;
constexpr uint8_t kTagSet = 0x04;

constexpr uint32_t kMaxDecodeDepth = 512;

Status CorruptAt(size_t offset, const char* what) {
  return Status::Corruption(std::string(what) + " at offset " + std::to_string(offset));
}

Status DecodeImpl(std::string_view data, size_t* offset, uint32_t depth, XSet* out);

Status DecodeStringPayload(std::string_view data, size_t* offset, std::string_view* payload) {
  uint64_t len;
  if (!GetVarint(data, offset, &len)) return CorruptAt(*offset, "truncated length");
  if (len > data.size() - *offset) return CorruptAt(*offset, "string overruns buffer");
  *payload = data.substr(*offset, len);
  *offset += len;
  return Status::OK();
}

Status DecodeImpl(std::string_view data, size_t* offset, uint32_t depth, XSet* out) {
  if (depth > kMaxDecodeDepth) return CorruptAt(*offset, "nesting too deep");
  if (*offset >= data.size()) return CorruptAt(*offset, "truncated value");
  uint8_t tag = static_cast<uint8_t>(data[(*offset)++]);
  switch (tag) {
    case kTagEmpty:
      *out = XSet::Empty();
      return Status::OK();
    case kTagInt: {
      uint64_t raw;
      if (!GetVarint(data, offset, &raw)) return CorruptAt(*offset, "truncated int");
      *out = XSet::Int(ZigZagDecode(raw));
      return Status::OK();
    }
    case kTagSymbol: {
      std::string_view payload;
      Status st = DecodeStringPayload(data, offset, &payload);
      if (!st.ok()) return st;
      *out = XSet::Symbol(payload);
      return Status::OK();
    }
    case kTagString: {
      std::string_view payload;
      Status st = DecodeStringPayload(data, offset, &payload);
      if (!st.ok()) return st;
      *out = XSet::String(payload);
      return Status::OK();
    }
    case kTagSet: {
      uint64_t count;
      if (!GetVarint(data, offset, &count)) return CorruptAt(*offset, "truncated count");
      // The empty set encodes as kTagEmpty, never as a zero-count kTagSet:
      // admitting both would give ∅ two on-disk spellings and break the
      // equal-sets-have-equal-encodings property checksums and dedup rely on.
      if (count == 0) return CorruptAt(*offset, "non-canonical zero-count set");
      // Each membership needs at least 2 tag bytes; reject absurd counts
      // before reserving memory.
      if (count > (data.size() - *offset) / 2) {
        return CorruptAt(*offset, "member count overruns buffer");
      }
      std::vector<Membership> members;
      members.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        XSet element, scope;
        Status st = DecodeImpl(data, offset, depth + 1, &element);
        if (!st.ok()) return st;
        st = DecodeImpl(data, offset, depth + 1, &scope);
        if (!st.ok()) return st;
        members.push_back(Membership{element, scope});
      }
      *out = XSet::FromMembers(std::move(members));
      return Status::OK();
    }
    default:
      return CorruptAt(*offset - 1, "unknown tag");
  }
}

}  // namespace

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view data, size_t* offset, uint64_t* out) {
  // On every failure path *offset is restored to the start of the varint, so
  // a caller's error message points at the malformed value, not mid-way
  // through it.
  const size_t start = *offset;
  uint64_t result = 0;
  int shift = 0;
  while (*offset < data.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(data[(*offset)++]);
    if (shift == 63 && (byte & 0x7e) != 0) {
      // The 10th byte may only carry bit 64's single payload bit; anything
      // above it would be silently shifted out of the uint64_t.
      *offset = start;
      return false;
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return true;
    }
    shift += 7;
  }
  // Truncated, or a continuation bit still set after 10 bytes (> 64 bits).
  *offset = start;
  return false;
}

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void EncodeXSet(const XSet& s, std::string* out) {
  switch (s.kind()) {
    case NodeKind::kInt:
      out->push_back(static_cast<char>(kTagInt));
      PutVarint(ZigZagEncode(s.int_value()), out);
      return;
    case NodeKind::kSymbol:
    case NodeKind::kString: {
      out->push_back(static_cast<char>(s.is_symbol() ? kTagSymbol : kTagString));
      PutVarint(s.str_value().size(), out);
      out->append(s.str_value());
      return;
    }
    case NodeKind::kSet: {
      if (s.empty()) {
        out->push_back(static_cast<char>(kTagEmpty));
        return;
      }
      out->push_back(static_cast<char>(kTagSet));
      PutVarint(s.cardinality(), out);
      for (const Membership& m : s.members()) {
        EncodeXSet(m.element, out);
        EncodeXSet(m.scope, out);
      }
      return;
    }
  }
}

std::string EncodeXSetToString(const XSet& s) {
  std::string out;
  EncodeXSet(s, &out);
  return out;
}

Result<XSet> DecodeXSet(std::string_view data, size_t* offset) {
  XSet out;
  Status st = DecodeImpl(data, offset, 0, &out);
  if (!st.ok()) return st;
  return out;
}

Result<XSet> DecodeXSetWhole(std::string_view data) {
  size_t offset = 0;
  Result<XSet> r = DecodeXSet(data, &offset);
  if (!r.ok()) return r;
  if (offset != data.size()) {
    return Status::Corruption("trailing bytes after value: " +
                              std::to_string(data.size() - offset));
  }
  return r;
}

}  // namespace xst
