// SetStore: named, persistent extended sets.
//
// The store realizes the 1977 proposition directly: the stored object is a
// set, the access interface is sets in / sets out, and everything else
// (pages, chunking, the catalog) is representation detail beneath the
// mathematical identity.
//
// Layout:
//   page 0           superblock: one record, the encoded tuple
//                    ⟨⟨catalog_first_page, catalog_byte_length⟩, page_span⟩
//                    (a fresh store persists an empty catalog immediately,
//                    so the pointer is always live)
//   pages 1..N       blob chunks; a blob occupies a contiguous page span,
//                    one record per page
//
// Updates are append-only (new blob, catalog pointer swap); stale pages are
// reclaimed by Compact(), which rewrites the live blobs into a fresh file.
// Every page is checksummed; any torn or tampered byte surfaces as
// Corruption on read.
//
// Failure contract (proved by tests/fault_injection_test.cc): every I/O
// failure surfaces as a non-OK Status, the in-memory catalog never commits
// an update whose persist failed (staged-catalog discipline), and the file
// on disk is always either a consistent pre-/post-state or detectably
// corrupt via checksums and catalog range validation — never silently
// wrong.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/sync.h"
#include "src/core/cursor.h"
#include "src/core/xset.h"
#include "src/store/btree.h"
#include "src/store/catalog.h"
#include "src/store/file.h"
#include "src/store/pager.h"

namespace xst {

/// \brief How a named set is laid out on pages.
enum class StorageMode {
  kBlob,          ///< one encoded value across a contiguous page span
  kOrderedIndex,  ///< B+tree of memberships in canonical order (btree.h)
};

struct SetStoreOptions {
  size_t buffer_pool_pages = 64;

  /// \brief Opens the store's backing files; StdioFile::Open when unset.
  /// Applied to every file the store opens, including Compact's temp file —
  /// the hook the fault-injection suite hangs a failing device on.
  FileFactory file_factory;

  /// \brief Compact's atomic-swap primitive; std::rename when unset
  /// (test hook for the rename-failure recovery path).
  std::function<int(const char* from, const char* to)> rename_fn;
};

/// \brief Thread safety: every public method serializes on one internal
/// Mutex (`mu_`), which guards both the catalog and the pager — the 1977
/// single-writer discipline, now a Clang-checked capability instead of a
/// comment. The pager itself stays lock-free; it is reachable only through
/// `pager_`, which is XST_GUARDED_BY(mu_). Coarse-grained on purpose: every
/// operation is dominated by I/O, so a finer pager/catalog split would buy
/// contention windows, not throughput.
class SetStore {
 public:
  /// \brief Opens (creating if necessary) a store at `path`.
  static Result<std::unique_ptr<SetStore>> Open(const std::string& path,
                                                const SetStoreOptions& options = {});

  /// \brief Writes (or replaces) a named set and persists the catalog.
  Status Put(const std::string& name, const XSet& value) XST_EXCLUDES(mu_);

  /// \brief Writes several named sets with ONE catalog persist at the end:
  /// all-or-nothing visibility across restarts (the superblock pointer is
  /// the commit point; blobs written before a crash are unreferenced
  /// garbage, reclaimed by Compact). Names must be unique within the batch.
  Status PutBatch(const std::vector<std::pair<std::string, XSet>>& entries)
      XST_EXCLUDES(mu_);

  /// \brief Writes (or replaces) a named SET as a B+tree ordered index:
  /// range and point access paths touch O(height + matching leaves) pages
  /// instead of decoding the whole value. Atoms have no member list and are
  /// rejected with Invalid. Get/Scrub/cursors work on either storage mode.
  Status PutIndexed(const std::string& name, const XSet& value) XST_EXCLUDES(mu_);

  /// \brief Inserts one membership into an ordered-index set (Invalid for
  /// blob-stored names). Idempotent: inserting a present member is a no-op.
  /// After an I/O failure mid-mutation the store reloads from disk, which
  /// holds either a consistent pre-state or detectable Corruption.
  Status InsertMember(const std::string& name, const Membership& m) XST_EXCLUDES(mu_);

  /// \brief Removes one membership from an ordered-index set (Invalid for
  /// blob-stored names). Erasing an absent member is a no-op.
  Status EraseMember(const std::string& name, const Membership& m) XST_EXCLUDES(mu_);

  /// \brief True iff the stored member list contains `m`. For indexed sets
  /// this is one root-to-leaf descent; blob sets decode and probe.
  Result<bool> ContainsMember(const std::string& name, const Membership& m)
      XST_EXCLUDES(mu_);

  /// \brief The storage mode of a stored name.
  Result<StorageMode> ModeOf(const std::string& name) const XST_EXCLUDES(mu_);

  /// \brief Opens a streaming cursor over the stored set's canonical member
  /// list. Indexed sets stream leaf-by-leaf without materializing the set;
  /// blob sets decode once and serve batch slices. The cursor is
  /// invalidated by any mutation of the store.
  Result<std::unique_ptr<MemberCursor>> OpenCursor(const std::string& name)
      XST_EXCLUDES(mu_);

  /// \brief Opens a cursor over {z^w ∈ name : lo ≤ z ≤ hi} (element-interval
  /// σ-restriction under the structural order). Indexed sets seek the lower
  /// edge and read only in-range leaves.
  Result<std::unique_ptr<MemberCursor>> OpenElementRange(const std::string& name,
                                                         const XSet& lo,
                                                         const XSet& hi)
      XST_EXCLUDES(mu_);

  /// \brief One leaf batch for a streaming index cursor (the BTreeCursor
  /// plumbing in store/cursor.h, not a user API): appends entries and
  /// advances `pos`; an untouched `out` means the cursor is exhausted.
  Status ReadIndexBatch(BTreeCursorPos* pos, const XSet* hi_element,
                        std::vector<Membership>* out) XST_EXCLUDES(mu_);

  /// \brief Full-store verification: re-reads every live blob through the
  /// checksummed page path and decodes it; ordered indexes additionally get
  /// a full structural ValidateBTree. Returns the number of sets verified,
  /// or the first Corruption/IOError encountered.
  Result<size_t> Scrub() XST_EXCLUDES(mu_);

  /// \brief Reads a named set back. NotFound / Corruption as appropriate.
  Result<XSet> Get(const std::string& name) XST_EXCLUDES(mu_);

  /// \brief Removes the name (space reclaimed at Compact()).
  Status Delete(const std::string& name) XST_EXCLUDES(mu_);

  /// \brief True iff `name` is stored.
  bool Contains(const std::string& name) const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return catalog_.Contains(name);
  }

  /// \brief All stored names.
  std::vector<std::string> List() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return catalog_.Names();
  }

  /// \brief Rewrites the store keeping only live blobs; reopens in place.
  /// On failure the temp file is removed and the original store stays
  /// usable; only a failed post-swap reopen leaves the store closed (the
  /// file itself remains valid — reopen from the path).
  Status Compact() XST_EXCLUDES(mu_);

  /// \brief Flushes the pool to disk.
  Status Flush() XST_EXCLUDES(mu_);

  /// \brief Snapshot of the pager's hit/miss/eviction counters.
  PagerStats pager_stats() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pager_->stats();
  }
  void ResetPagerStats() XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    pager_->ResetStats();
  }
  uint32_t page_count() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pager_->page_count();
  }

  /// \brief The catalog's set representation (for inspection and tests).
  XSet CatalogAsXSet() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return catalog_.ToXSet();
  }

 private:
  SetStore(std::string path, SetStoreOptions options)
      : path_(std::move(path)), options_(std::move(options)) {}

  Result<std::unique_ptr<Pager>> OpenPager(const std::string& path) const;
  Status CheckOpen() const XST_REQUIRES(mu_);
  Result<CatalogEntry> WriteBlob(const std::string& bytes) XST_REQUIRES(mu_);
  Result<std::string> ReadBlob(const CatalogEntry& entry) XST_REQUIRES(mu_);
  /// Persists `staged` to disk; the caller commits it to catalog_ only on OK.
  Status PersistCatalog(const Catalog& staged) XST_REQUIRES(mu_);
  Status LoadCatalog() XST_REQUIRES(mu_);
  /// Reopens pager_ + catalog_ from path_; on failure the store is closed.
  Status Reopen() XST_REQUIRES(mu_);
  /// Get/Flush bodies for callers already holding the lock (Scrub, Compact).
  Result<XSet> GetLocked(const std::string& name) XST_REQUIRES(mu_);
  Status FlushLocked() XST_REQUIRES(mu_);
  /// Materializes an ordered-index set from its leaves (count-checked).
  Result<XSet> GetIndexLocked(const std::string& name, const CatalogEntry& entry)
      XST_REQUIRES(mu_);
  /// Commits a tree mutation: validate (at XST_VALIDATE level ≥ 1), stage
  /// the new tree identity, persist; reopens from disk on failure.
  Status CommitTreeMutation(const std::string& name, const BTreeInfo& info)
      XST_REQUIRES(mu_);
  /// Corruption unless an index entry's root/height are plausible.
  Status ValidateIndexRange(const std::string& what, const CatalogEntry& entry) const
      XST_REQUIRES(mu_);
  /// Compact's rewrite pass: copies every live set into the store at
  /// `tmp_path`. A named helper (not a lambda) so the analysis can see the
  /// lock requirement.
  Status CopyLiveTo(const std::string& tmp_path) XST_REQUIRES(mu_);
  /// Corruption unless the blob range is well-formed for this file.
  Status ValidateBlobRange(const std::string& what, int64_t first_page,
                           int64_t page_span, int64_t byte_length) const
      XST_REQUIRES(mu_);

  std::string path_;        // immutable after construction
  SetStoreOptions options_; // immutable after construction
  mutable Mutex mu_;
  std::unique_ptr<Pager> pager_ XST_GUARDED_BY(mu_);
  Catalog catalog_ XST_GUARDED_BY(mu_);
};

}  // namespace xst
