// SetStore: named, persistent extended sets.
//
// The store realizes the 1977 proposition directly: the stored object is a
// set, the access interface is sets in / sets out, and everything else
// (pages, chunking, the catalog) is representation detail beneath the
// mathematical identity.
//
// Layout:
//   page 0           superblock: one record, the encoded tuple
//                    ⟨⟨catalog_first_page, catalog_byte_length⟩, page_span⟩
//                    (a fresh store persists an empty catalog immediately,
//                    so the pointer is always live)
//   pages 1..N       blob chunks; a blob occupies a contiguous page span,
//                    one record per page
//
// Updates are append-only (new blob, catalog pointer swap); stale pages are
// reclaimed by Compact(), which rewrites the live blobs into a fresh file.
// Every page is checksummed; any torn or tampered byte surfaces as
// Corruption on read.
//
// Durability (DESIGN.md §14): every mutation is one WAL transaction — the
// pages it touched become log records, a commit record seals them, and the
// caller is acknowledged only after the log is fsynced (group commit
// batches those fsyncs across concurrent callers). The main file is
// written only at checkpoint; Open() replays the log's committed prefix
// after a crash. The `<path>.wal` sidecar belongs to the main file: move
// or delete them together.
//
// Failure contract (proved by tests/fault_injection_test.cc and
// tests/wal_recovery_test.cc): every I/O failure surfaces as a non-OK
// Status, no caller is ever acknowledged before its commit record is
// fsynced, the in-memory catalog never retains an update whose log commit
// failed (resident state falls back to the durable prefix), and a reopened
// store always equals an exact prefix of the acknowledged mutation history
// — every acknowledged commit present, no partial mutation, torn log tails
// truncated, torn pages detectable via checksums — never silently wrong.
//
// Isolation caveat under group commit (wal_group_commit=true): a commit
// becomes visible to concurrent readers when its record is appended under
// the store lock, BEFORE the fsync that acknowledges it — readers see the
// latest appended state, not the latest durable state. If that fsync then
// fails, resident state rolls back to the durable prefix, so a reader may
// observe a commit (only in the append-to-failed-fsync window, never
// across a reopen) whose writer is subsequently told it failed. Writers
// are unaffected — acknowledgment still implies durability. With
// wal_group_commit=false the window does not exist: the fsync happens
// under the store lock, so readers only ever see durable commits.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/sync.h"
#include "src/core/cursor.h"
#include "src/core/xset.h"
#include "src/store/btree.h"
#include "src/store/catalog.h"
#include "src/store/file.h"
#include "src/store/pager.h"
#include "src/store/wal.h"

namespace xst {

/// \brief How a named set is laid out on pages.
enum class StorageMode {
  kBlob,          ///< one encoded value across a contiguous page span
  kOrderedIndex,  ///< B+tree of memberships in canonical order (btree.h)
};

struct SetStoreOptions {
  size_t buffer_pool_pages = 64;

  /// \brief Number of pager latch shards for the concurrent read path
  /// (power of two; the pager clamps so every shard keeps >= 4 frames).
  /// 1 reproduces the historical coarse pager.
  size_t pager_latch_shards = 16;

  /// \brief Serialize every read on the store lock instead of taking the
  /// optimistic sharded-latch path — the coarse baseline bench_pager_mt
  /// compares against, and a diagnostic escape hatch.
  bool serialize_reads = false;

  /// \brief Opens the store's backing files; StdioFile::Open when unset.
  /// Applied to every file the store opens, including Compact's temp file —
  /// the hook the fault-injection suite hangs a failing device on.
  FileFactory file_factory;

  /// \brief Compact's atomic-swap primitive; std::rename when unset
  /// (test hook for the rename-failure recovery path).
  std::function<int(const char* from, const char* to)> rename_fn;

  /// \brief Checkpoint once the log segment outgrows this many bytes
  /// (checked after each acknowledged commit) — the knob that bounds
  /// recovery replay time. Generous default: checkpoints exist to recycle
  /// the log, not to pace steady-state writes.
  uint64_t wal_checkpoint_bytes = 8ull << 20;

  /// \brief Group commit (default): committers release the store lock and
  /// park on the log's CondVar while one leader fsyncs, so concurrent
  /// commits share flushes. Concurrent readers may observe a commit in its
  /// append-to-fsync window, i.e. before it is durable (see the isolation
  /// caveat in the file comment). Off = fsync while still holding the
  /// store lock — readers then only ever see durable commits; the
  /// serialized baseline bench_wal compares against.
  bool wal_group_commit = true;

  /// \brief Checkpoint in the destructor, leaving a cleanly closed store
  /// with a self-contained main file and an empty log. Tests and the
  /// recovery bench turn this off to exercise replay-on-open.
  bool checkpoint_on_close = true;
};

/// \brief Thread safety (DESIGN.md §15): mutations keep the 1977
/// single-writer discipline — every write path serializes on `mu_` (rank
/// 10), which guards the catalog, the pager identity, and the mutation
/// epoch. Reads scale: Get/ContainsMember/cursor opens take `mu_` only long
/// enough to capture a ReadView (pager handle + catalog entry + epoch),
/// then stream pages through the pager's sharded latches with no store lock
/// held, and re-take `mu_` at the end to validate the view. A mutation,
/// checkpoint, or pager reopen that overlapped the read bumps the epoch (or
/// swaps the pager), so validation fails and the read retries — after a few
/// optimistic attempts it falls back to the coarse path under `mu_`, which
/// guarantees progress. Errors observed under an invalidated view are
/// discarded, never reported (they may be artifacts of racing a writer).
/// `serialize_reads` turns the whole optimistic path off.
class SetStore {
 public:
  /// \brief Opens (creating if necessary) a store at `path`. Replays the
  /// committed prefix of `path + ".wal"` into the main file first if a
  /// crash left one behind (see DESIGN.md §14).
  static Result<std::unique_ptr<SetStore>> Open(const std::string& path,
                                                const SetStoreOptions& options = {});

  /// \brief Best-effort close: checkpoints (or at least flushes the log)
  /// so a cleanly closed store reopens without replay. Failures are
  /// swallowed — the log already holds everything an fsynced commit needs.
  ~SetStore();

  /// \brief Writes (or replaces) a named set and persists the catalog.
  Status Put(const std::string& name, const XSet& value) XST_EXCLUDES(mu_);

  /// \brief Writes several named sets with ONE catalog persist at the end:
  /// all-or-nothing visibility across restarts (the superblock pointer is
  /// the commit point; blobs written before a crash are unreferenced
  /// garbage, reclaimed by Compact). Names must be unique within the batch.
  Status PutBatch(const std::vector<std::pair<std::string, XSet>>& entries)
      XST_EXCLUDES(mu_);

  /// \brief Writes (or replaces) a named SET as a B+tree ordered index:
  /// range and point access paths touch O(height + matching leaves) pages
  /// instead of decoding the whole value. Atoms have no member list and are
  /// rejected with Invalid. Get/Scrub/cursors work on either storage mode.
  Status PutIndexed(const std::string& name, const XSet& value) XST_EXCLUDES(mu_);

  /// \brief Inserts one membership into an ordered-index set (Invalid for
  /// blob-stored names). Idempotent: inserting a present member is a no-op.
  /// After an I/O failure mid-mutation the store reloads from disk, which
  /// holds either a consistent pre-state or detectable Corruption.
  Status InsertMember(const std::string& name, const Membership& m) XST_EXCLUDES(mu_);

  /// \brief Removes one membership from an ordered-index set (Invalid for
  /// blob-stored names). Erasing an absent member is a no-op.
  Status EraseMember(const std::string& name, const Membership& m) XST_EXCLUDES(mu_);

  /// \brief True iff the stored member list contains `m`. For indexed sets
  /// this is one root-to-leaf descent; blob sets decode and probe.
  Result<bool> ContainsMember(const std::string& name, const Membership& m)
      XST_EXCLUDES(mu_);

  /// \brief The storage mode of a stored name.
  Result<StorageMode> ModeOf(const std::string& name) const XST_EXCLUDES(mu_);

  /// \brief Opens a streaming cursor over the stored set's canonical member
  /// list. Indexed sets stream leaf-by-leaf without materializing the set;
  /// blob sets decode once and serve batch slices. The cursor is
  /// invalidated by any mutation of the store.
  Result<std::unique_ptr<MemberCursor>> OpenCursor(const std::string& name)
      XST_EXCLUDES(mu_);

  /// \brief Opens a cursor over {z^w ∈ name : lo ≤ z ≤ hi} (element-interval
  /// σ-restriction under the structural order). Indexed sets seek the lower
  /// edge and read only in-range leaves.
  Result<std::unique_ptr<MemberCursor>> OpenElementRange(const std::string& name,
                                                         const XSet& lo,
                                                         const XSet& hi)
      XST_EXCLUDES(mu_);

  /// \brief One leaf batch for a streaming index cursor (the BTreeCursor
  /// plumbing in store/cursor.h, not a user API): appends entries and
  /// advances `pos`; an untouched `out` means the cursor is exhausted.
  Status ReadIndexBatch(BTreeCursorPos* pos, const XSet* hi_element,
                        std::vector<Membership>* out) XST_EXCLUDES(mu_);

  /// \brief Full-store verification: re-reads every live blob through the
  /// checksummed page path and decodes it; ordered indexes additionally get
  /// a full structural ValidateBTree. Returns the number of sets verified,
  /// or the first Corruption/IOError encountered.
  Result<size_t> Scrub() XST_EXCLUDES(mu_);

  /// \brief Reads a named set back. NotFound / Corruption as appropriate.
  Result<XSet> Get(const std::string& name) XST_EXCLUDES(mu_);

  /// \brief Removes the name (space reclaimed at Compact()).
  Status Delete(const std::string& name) XST_EXCLUDES(mu_);

  /// \brief True iff `name` is stored.
  bool Contains(const std::string& name) const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return catalog_.Contains(name);
  }

  /// \brief All stored names.
  std::vector<std::string> List() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return catalog_.Names();
  }

  /// \brief Rewrites the store keeping only live blobs; reopens in place.
  /// On failure the temp file is removed and the original store stays
  /// usable; only a failed post-swap reopen leaves the store closed (the
  /// file itself remains valid — reopen from the path).
  Status Compact() XST_EXCLUDES(mu_);

  /// \brief Makes everything appended so far durable (fsyncs the log).
  Status Flush() XST_EXCLUDES(mu_);

  /// \brief Forces a checkpoint: fsyncs the log, writes every committed
  /// page image into the main file, fsyncs it, and recycles the log
  /// segment. After OK the main file is self-contained.
  Status Checkpoint() XST_EXCLUDES(mu_);

  /// \brief Snapshot of the log's segment/durability counters.
  WalStats wal_stats() const { return wal_->stats(); }

  /// \brief Snapshot of the pager's hit/miss/eviction counters.
  PagerStats pager_stats() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pager_->stats();
  }
  void ResetPagerStats() XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    pager_->ResetStats();
  }
  uint32_t page_count() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pager_->page_count();
  }
  /// \brief Pager latch shards actually in use (after the pager's clamp).
  size_t pager_latch_shards() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pager_->latch_shards();
  }

  /// \brief The catalog's set representation (for inspection and tests).
  XSet CatalogAsXSet() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return catalog_.ToXSet();
  }

 private:
  SetStore(std::string path, SetStoreOptions options)
      : path_(std::move(path)), options_(std::move(options)) {}

  /// A consistent read handle captured under mu_: the pager instance, the
  /// catalog entry for the requested name, and the mutation epoch at
  /// capture. The shared_ptr keeps the pager alive across a concurrent
  /// Compact/reopen; the epoch detects any overlapping mutation.
  struct ReadView {
    std::shared_ptr<Pager> pager;
    CatalogEntry entry;
    uint64_t epoch = 0;
  };

  Result<std::unique_ptr<Pager>> OpenPager(const std::string& path) const;
  Status CheckOpen() const XST_REQUIRES(mu_);
  /// Captures a ReadView under mu_ (entry lookup skipped when `name` is
  /// null). A NotFound here is linearizable: the name was absent at capture.
  Result<ReadView> CaptureView(const std::string* name) const XST_EXCLUDES(mu_);
  /// True iff nothing invalidated `view` since capture: same pager instance,
  /// same mutation epoch, store still open. Results computed under a view
  /// may be returned only when this holds.
  bool ValidateView(const ReadView& view) const XST_EXCLUDES(mu_);
  Result<CatalogEntry> WriteBlob(const std::string& bytes) XST_REQUIRES(mu_);
  /// Streams a blob's pages out of `pager` via latched snapshot reads; no
  /// store lock needed (static on purpose: the concurrent read path runs it
  /// against a captured view's pager).
  static Result<std::string> ReadBlobFrom(Pager& pager, const CatalogEntry& entry);
  /// ReadBlobFrom + whole-set decode with name context.
  static Result<XSet> DecodeBlobSet(Pager& pager, const std::string& name,
                                    const CatalogEntry& entry);
  /// Materializes an ordered-index set from its leaves (count-checked;
  /// static for the same reason as ReadBlobFrom).
  static Result<XSet> MaterializeIndex(Pager& pager, const std::string& name,
                                       const CatalogEntry& entry);
  /// Writes `staged`'s blob + superblock pointer into the pool (no I/O to
  /// the main file; durability comes from the WAL commit that follows).
  Status StageCatalog(const Catalog& staged) XST_REQUIRES(mu_);
  Status LoadCatalog() XST_REQUIRES(mu_);
  /// Applies crash-recovery images to the main file and recycles the log.
  /// Runs in Open(), before the pager exists.
  Status ReplayRecoveredImages();
  /// Reopens pager_ (wal-attached) + catalog_; on failure the store closes.
  Status ReopenPagerLocked() XST_REQUIRES(mu_);
  /// Aborts the open WAL txn and reloads resident state from the log's
  /// appended-committed view (mutation failed before its commit record).
  Status AbortResidentLocked() XST_REQUIRES(mu_);
  /// AbortResidentLocked + context plumbing for a failed mutation.
  Status FailTxnLocked(Status cause) XST_REQUIRES(mu_);
  /// After a failed commit fsync: rolls the log and resident state back to
  /// the durable prefix (nothing acknowledged is lost by construction).
  Status RecoverDurableLocked() XST_REQUIRES(mu_);
  /// Phase 1 of every mutation, under mu_: stage the catalog, drain dirty
  /// pages into the log, append the commit record. Returns the commit LSN
  /// (0 = nothing to commit); resident state is already advanced.
  Result<uint64_t> CommitLocked(Catalog staged) XST_REQUIRES(mu_);
  /// Phase 2, after mu_ is released: group-commit wait on the LSN, then
  /// maybe checkpoint. Error recovery re-acquires mu_.
  Status FinishCommit(const Result<uint64_t>& lsn) XST_EXCLUDES(mu_);
  Status CheckpointLocked() XST_REQUIRES(mu_);
  void MaybeCheckpoint() XST_EXCLUDES(mu_);
  /// Lock-holding bodies of the public mutations (phase 1).
  Result<uint64_t> PutLocked(const std::string& name, const XSet& value)
      XST_REQUIRES(mu_);
  Result<uint64_t> PutBatchLocked(
      const std::vector<std::pair<std::string, XSet>>& entries) XST_REQUIRES(mu_);
  Result<uint64_t> PutIndexedLocked(const std::string& name, const XSet& value)
      XST_REQUIRES(mu_);
  Result<uint64_t> InsertMemberLocked(const std::string& name, const Membership& m)
      XST_REQUIRES(mu_);
  Result<uint64_t> EraseMemberLocked(const std::string& name, const Membership& m)
      XST_REQUIRES(mu_);
  Result<uint64_t> DeleteLocked(const std::string& name) XST_REQUIRES(mu_);
  /// Get/Flush bodies for callers already holding the lock (Scrub, Compact).
  Result<XSet> GetLocked(const std::string& name) XST_REQUIRES(mu_);
  Status FlushLocked() XST_REQUIRES(mu_);
  /// Commits a tree mutation: validate (at XST_VALIDATE level ≥ 1), stage
  /// the new tree identity, commit; resident state reloads on failure.
  Result<uint64_t> CommitTreeMutation(const std::string& name, const BTreeInfo& info)
      XST_REQUIRES(mu_);
  /// Corruption unless an index entry's root/height are plausible.
  Status ValidateIndexRange(const std::string& what, const CatalogEntry& entry) const
      XST_REQUIRES(mu_);
  /// Compact's rewrite pass: copies every live set into the store at
  /// `tmp_path`. A named helper (not a lambda) so the analysis can see the
  /// lock requirement.
  Status CopyLiveTo(const std::string& tmp_path) XST_REQUIRES(mu_);
  /// Corruption unless the blob range is well-formed for this file.
  Status ValidateBlobRange(const std::string& what, int64_t first_page,
                           int64_t page_span, int64_t byte_length) const
      XST_REQUIRES(mu_);

  std::string path_;        // immutable after construction
  SetStoreOptions options_; // immutable after construction
  // Created once in Open() before the store is reachable, then internally
  // synchronized — phase 2 of a commit uses it without holding mu_ (that is
  // the whole point of group commit), and readers probe its image table
  // under pager latches. Lock order: mu_ < shard latch < Wal::mu_.
  std::unique_ptr<Wal> wal_;
  // The outermost lock in the hierarchy (DESIGN.md §15): every blocking
  // operation (file I/O, commit fsyncs) is legal under it, because its rank
  // sits below the pager-latch floor.
  mutable Mutex mu_ XST_LOCK_RANK(10);
  // shared_ptr, not unique_ptr: captured ReadViews keep the old pager alive
  // (and its file open) across a concurrent Compact/reopen; their reads
  // then fail validation and retry against the new instance.
  std::shared_ptr<Pager> pager_ XST_GUARDED_BY(mu_);
  Catalog catalog_ XST_GUARDED_BY(mu_);
  // Bumped at the start of every mutation, checkpoint, and pager reopen;
  // ReadView validation compares it to detect overlapping writes.
  uint64_t mutation_epoch_ XST_GUARDED_BY(mu_) = 0;
  // Consecutive CheckpointLocked failures (MaybeCheckpoint's log backoff).
  uint64_t checkpoint_failure_streak_ XST_GUARDED_BY(mu_) = 0;
};

}  // namespace xst
