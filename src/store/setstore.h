// SetStore: named, persistent extended sets.
//
// The store realizes the 1977 proposition directly: the stored object is a
// set, the access interface is sets in / sets out, and everything else
// (pages, chunking, the catalog) is representation detail beneath the
// mathematical identity.
//
// Layout:
//   page 0           superblock: one record, the encoded tuple
//                    ⟨⟨catalog_first_page, catalog_byte_length⟩, page_span⟩
//                    (a fresh store persists an empty catalog immediately,
//                    so the pointer is always live)
//   pages 1..N       blob chunks; a blob occupies a contiguous page span,
//                    one record per page
//
// Updates are append-only (new blob, catalog pointer swap); stale pages are
// reclaimed by Compact(), which rewrites the live blobs into a fresh file.
// Every page is checksummed; any torn or tampered byte surfaces as
// Corruption on read.
//
// Failure contract (proved by tests/fault_injection_test.cc): every I/O
// failure surfaces as a non-OK Status, the in-memory catalog never commits
// an update whose persist failed (staged-catalog discipline), and the file
// on disk is always either a consistent pre-/post-state or detectably
// corrupt via checksums and catalog range validation — never silently
// wrong.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/sync.h"
#include "src/core/xset.h"
#include "src/store/catalog.h"
#include "src/store/file.h"
#include "src/store/pager.h"

namespace xst {

struct SetStoreOptions {
  size_t buffer_pool_pages = 64;

  /// \brief Opens the store's backing files; StdioFile::Open when unset.
  /// Applied to every file the store opens, including Compact's temp file —
  /// the hook the fault-injection suite hangs a failing device on.
  FileFactory file_factory;

  /// \brief Compact's atomic-swap primitive; std::rename when unset
  /// (test hook for the rename-failure recovery path).
  std::function<int(const char* from, const char* to)> rename_fn;
};

/// \brief Thread safety: every public method serializes on one internal
/// Mutex (`mu_`), which guards both the catalog and the pager — the 1977
/// single-writer discipline, now a Clang-checked capability instead of a
/// comment. The pager itself stays lock-free; it is reachable only through
/// `pager_`, which is XST_GUARDED_BY(mu_). Coarse-grained on purpose: every
/// operation is dominated by I/O, so a finer pager/catalog split would buy
/// contention windows, not throughput.
class SetStore {
 public:
  /// \brief Opens (creating if necessary) a store at `path`.
  static Result<std::unique_ptr<SetStore>> Open(const std::string& path,
                                                const SetStoreOptions& options = {});

  /// \brief Writes (or replaces) a named set and persists the catalog.
  Status Put(const std::string& name, const XSet& value) XST_EXCLUDES(mu_);

  /// \brief Writes several named sets with ONE catalog persist at the end:
  /// all-or-nothing visibility across restarts (the superblock pointer is
  /// the commit point; blobs written before a crash are unreferenced
  /// garbage, reclaimed by Compact). Names must be unique within the batch.
  Status PutBatch(const std::vector<std::pair<std::string, XSet>>& entries)
      XST_EXCLUDES(mu_);

  /// \brief Full-store verification: re-reads every live blob through the
  /// checksummed page path and decodes it. Returns the number of blobs
  /// verified, or the first Corruption/IOError encountered.
  Result<size_t> Scrub() XST_EXCLUDES(mu_);

  /// \brief Reads a named set back. NotFound / Corruption as appropriate.
  Result<XSet> Get(const std::string& name) XST_EXCLUDES(mu_);

  /// \brief Removes the name (space reclaimed at Compact()).
  Status Delete(const std::string& name) XST_EXCLUDES(mu_);

  /// \brief True iff `name` is stored.
  bool Contains(const std::string& name) const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return catalog_.Contains(name);
  }

  /// \brief All stored names.
  std::vector<std::string> List() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return catalog_.Names();
  }

  /// \brief Rewrites the store keeping only live blobs; reopens in place.
  /// On failure the temp file is removed and the original store stays
  /// usable; only a failed post-swap reopen leaves the store closed (the
  /// file itself remains valid — reopen from the path).
  Status Compact() XST_EXCLUDES(mu_);

  /// \brief Flushes the pool to disk.
  Status Flush() XST_EXCLUDES(mu_);

  /// \brief Snapshot of the pager's hit/miss/eviction counters.
  PagerStats pager_stats() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pager_->stats();
  }
  void ResetPagerStats() XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    pager_->ResetStats();
  }
  uint32_t page_count() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return pager_->page_count();
  }

  /// \brief The catalog's set representation (for inspection and tests).
  XSet CatalogAsXSet() const XST_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return catalog_.ToXSet();
  }

 private:
  SetStore(std::string path, SetStoreOptions options)
      : path_(std::move(path)), options_(std::move(options)) {}

  Result<std::unique_ptr<Pager>> OpenPager(const std::string& path) const;
  Status CheckOpen() const XST_REQUIRES(mu_);
  Result<CatalogEntry> WriteBlob(const std::string& bytes) XST_REQUIRES(mu_);
  Result<std::string> ReadBlob(const CatalogEntry& entry) XST_REQUIRES(mu_);
  /// Persists `staged` to disk; the caller commits it to catalog_ only on OK.
  Status PersistCatalog(const Catalog& staged) XST_REQUIRES(mu_);
  Status LoadCatalog() XST_REQUIRES(mu_);
  /// Reopens pager_ + catalog_ from path_; on failure the store is closed.
  Status Reopen() XST_REQUIRES(mu_);
  /// Get/Flush bodies for callers already holding the lock (Scrub, Compact).
  Result<XSet> GetLocked(const std::string& name) XST_REQUIRES(mu_);
  Status FlushLocked() XST_REQUIRES(mu_);
  /// Compact's rewrite pass: copies every live set into the store at
  /// `tmp_path`. A named helper (not a lambda) so the analysis can see the
  /// lock requirement.
  Status CopyLiveTo(const std::string& tmp_path) XST_REQUIRES(mu_);
  /// Corruption unless the blob range is well-formed for this file.
  Status ValidateBlobRange(const std::string& what, int64_t first_page,
                           int64_t page_span, int64_t byte_length) const
      XST_REQUIRES(mu_);

  std::string path_;        // immutable after construction
  SetStoreOptions options_; // immutable after construction
  mutable Mutex mu_;
  std::unique_ptr<Pager> pager_ XST_GUARDED_BY(mu_);
  Catalog catalog_ XST_GUARDED_BY(mu_);
};

}  // namespace xst
