// SetStore: named, persistent extended sets.
//
// The store realizes the 1977 proposition directly: the stored object is a
// set, the access interface is sets in / sets out, and everything else
// (pages, chunking, the catalog) is representation detail beneath the
// mathematical identity.
//
// Layout:
//   page 0           superblock: one record, the encoded pair
//                    ⟨catalog_first_page, catalog_byte_length⟩
//                    (⟨-1, 0⟩ while the store is empty)
//   pages 1..N       blob chunks; a blob occupies a contiguous page span,
//                    one record per page
//
// Updates are append-only (new blob, catalog pointer swap); stale pages are
// reclaimed by Compact(), which rewrites the live blobs into a fresh file.
// Every page is checksummed; any torn or tampered byte surfaces as
// Corruption on read.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/xset.h"
#include "src/store/catalog.h"
#include "src/store/pager.h"

namespace xst {

struct SetStoreOptions {
  size_t buffer_pool_pages = 64;
};

class SetStore {
 public:
  /// \brief Opens (creating if necessary) a store at `path`.
  static Result<std::unique_ptr<SetStore>> Open(const std::string& path,
                                                const SetStoreOptions& options = {});

  /// \brief Writes (or replaces) a named set and persists the catalog.
  Status Put(const std::string& name, const XSet& value);

  /// \brief Writes several named sets with ONE catalog persist at the end:
  /// all-or-nothing visibility across restarts (the superblock pointer is
  /// the commit point; blobs written before a crash are unreferenced
  /// garbage, reclaimed by Compact). Names must be unique within the batch.
  Status PutBatch(const std::vector<std::pair<std::string, XSet>>& entries);

  /// \brief Full-store verification: re-reads every live blob through the
  /// checksummed page path and decodes it. Returns the number of blobs
  /// verified, or the first Corruption/IOError encountered.
  Result<size_t> Scrub();

  /// \brief Reads a named set back. NotFound / Corruption as appropriate.
  Result<XSet> Get(const std::string& name);

  /// \brief Removes the name (space reclaimed at Compact()).
  Status Delete(const std::string& name);

  bool Contains(const std::string& name) const { return catalog_.Contains(name); }

  /// \brief All stored names.
  std::vector<std::string> List() const { return catalog_.Names(); }

  /// \brief Rewrites the store keeping only live blobs; reopens in place.
  Status Compact();

  /// \brief Flushes the pool to disk.
  Status Flush() { return pager_->Flush(); }

  const PagerStats& pager_stats() const { return pager_->stats(); }
  void ResetPagerStats() { pager_->ResetStats(); }
  uint32_t page_count() const { return pager_->page_count(); }

  /// \brief The catalog's set representation (for inspection and tests).
  XSet CatalogAsXSet() const { return catalog_.ToXSet(); }

 private:
  SetStore(std::string path, std::unique_ptr<Pager> pager)
      : path_(std::move(path)), pager_(std::move(pager)) {}

  Result<CatalogEntry> WriteBlob(const std::string& bytes);
  Result<std::string> ReadBlob(const CatalogEntry& entry);
  Status PersistCatalog();
  Status LoadCatalog();

  std::string path_;
  std::unique_ptr<Pager> pager_;
  Catalog catalog_;
};

}  // namespace xst
