// File: the byte-level I/O seam beneath the pager.
//
// The pager never touches stdio directly; it reads and writes whole pages
// through this interface. That keeps exactly one code path for real I/O
// (StdioFile) and lets the fault-injection harness (FaultFile) interpose a
// failing device underneath an unmodified storage stack — the property the
// fault-injection suite depends on: every I/O failure the store can ever
// see is producible on demand.
//
// Offsets are absolute; reads and writes are full-or-error (a short read or
// short write is reported as IOError, never as a partial success).
//
// Thread safety: StdioFile serializes every operation on an internal mutex
// (one shared FILE* position pointer is not concurrency-safe), so a whole-
// page ReadAt never observes a torn interleaving with a concurrent whole-
// page WriteAt — the property the sharded pager's unlatched miss reads rely
// on (DESIGN.md §15). Every File method is a registered blocking point for
// the locksmith blocking-under-latch rule (XST_BLOCKING).

#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/common/sync.h"

namespace xst {

class File {
 public:
  virtual ~File() = default;

  /// \brief Current size in bytes.
  virtual Result<uint64_t> XST_BLOCKING Size() = 0;

  /// \brief Reads exactly `n` bytes at `offset` into `dst`.
  virtual Status XST_BLOCKING ReadAt(uint64_t offset, char* dst, size_t n) = 0;

  /// \brief Writes exactly `n` bytes from `src` at `offset`.
  virtual Status XST_BLOCKING WriteAt(uint64_t offset, const char* src, size_t n) = 0;

  /// \brief Pushes buffered writes to the OS.
  virtual Status XST_BLOCKING Flush() = 0;

  /// \brief Truncates (or extends with zeros) the file to exactly `size`
  /// bytes. The WAL uses this to discard torn record tails after a crash and
  /// to recycle a log segment at checkpoint.
  virtual Status XST_BLOCKING Truncate(uint64_t size) = 0;
};

/// \brief Opens (creating if needed) `path` for read/write paging, or a File
/// implementation of the caller's choosing via SetStoreOptions::file_factory.
using FileFactory =
    std::function<Result<std::unique_ptr<File>>(const std::string& path)>;

/// \brief The production File: buffered stdio over a single descriptor.
class StdioFile : public File {
 public:
  /// \brief Opens `path` read/write, creating it if absent.
  static Result<std::unique_ptr<File>> Open(const std::string& path);

  ~StdioFile() override;
  StdioFile(const StdioFile&) = delete;
  StdioFile& operator=(const StdioFile&) = delete;

  Result<uint64_t> Size() override;
  Status ReadAt(uint64_t offset, char* dst, size_t n) override;
  Status WriteAt(uint64_t offset, const char* src, size_t n) override;
  Status Flush() override;
  Status Truncate(uint64_t size) override;

 private:
  StdioFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  // Innermost lock in the hierarchy (DESIGN.md §15): it guards only the
  // FILE* stream below and nothing acquired under it can block on another
  // xst lock, so any thread may call into a File while holding any latch
  // the protocol otherwise permits.
  Mutex mu_ XST_LOCK_RANK(100);
  std::FILE* file_ XST_GUARDED_BY(mu_);  // the stream position is the shared state
  std::string path_;                     // immutable after construction
};

}  // namespace xst
