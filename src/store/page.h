// Slotted pages: the on-disk unit of the set store.
//
// Layout (kPageSize bytes):
//   [0..8)    checksum of bytes [8..kPageSize)   (FNV-1a 64, seeded)
//   [8..12)   slot count (u32)
//   [12..16)  free-space offset (u32, grows upward from the header)
//   [16..)    slot directory: (offset u32, length u32) per slot
//   ...       record bytes, appended at the free-space offset
//
// Records are opaque byte strings; the set store chunks large encoded sets
// across several pages. Deleted slots keep their directory entry with
// length 0 (tombstone) — compaction is wholesale rewrite by the set store.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace xst {

inline constexpr size_t kPageSize = 8192;
inline constexpr uint32_t kInvalidPageId = 0xffffffff;

/// \brief An in-memory page image with slotted-record accessors.
class Page {
 public:
  /// Initializes an empty page (zero slots, checksum valid).
  Page();

  /// \brief Wraps a raw image; Corruption if the checksum does not match.
  ///
  /// `seed` perturbs the checksum domain; the pager passes the page id, so a
  /// structurally valid page written to (or read from) the wrong offset — a
  /// misdirected write — fails validation instead of decoding silently.
  /// Seed 0 is the historical unseeded format, kept as the default so
  /// standalone page images (and the page-0 superblock) are unchanged.
  static Result<Page> FromBytes(std::string_view bytes, uint64_t seed = 0);

  /// \brief The raw image with a freshly computed checksum under `seed`.
  std::string ToBytes(uint64_t seed = 0) const;

  /// \brief Bytes still available for one more record (including its
  /// directory entry).
  size_t FreeSpace() const;

  /// \brief Appends a record; returns its slot index, or CapacityError.
  Result<uint32_t> AddRecord(std::string_view record);

  /// \brief The record in `slot`; NotFound for tombstones, OutOfRange
  /// otherwise.
  Result<std::string_view> GetRecord(uint32_t slot) const;

  /// \brief Tombstones a slot (idempotent).
  Status DeleteRecord(uint32_t slot);

  uint32_t slot_count() const { return slot_count_; }

 private:
  uint32_t slot_count_ = 0;
  uint32_t free_offset_ = 0;  // next record write position within data_
  struct Slot {
    uint32_t offset;
    uint32_t length;  // 0 == tombstone
  };
  std::vector<Slot> slots_;
  std::string data_;  // record heap (only the payload region)
};

}  // namespace xst
