#include "src/store/page.h"

#include <cstring>

#include "src/common/hash.h"

namespace xst {

namespace {

constexpr size_t kHeaderSize = 16;  // checksum(8) + slot count(4) + free offset(4)
constexpr size_t kSlotEntrySize = 8;

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t ReadU32(std::string_view bytes, size_t offset) {
  uint32_t v;
  std::memcpy(&v, bytes.data() + offset, 4);
  return v;
}

uint64_t ReadU64(std::string_view bytes, size_t offset) {
  uint64_t v;
  std::memcpy(&v, bytes.data() + offset, 8);
  return v;
}

// Folds the caller's seed into the FNV-1a offset basis. Seed 0 maps to the
// plain basis, so unseeded images keep the historical checksum value.
uint64_t ChecksumBasis(uint64_t seed) {
  return 14695981039346656037ULL ^ (seed * 0x9e3779b97f4a7c15ULL);
}

}  // namespace

Page::Page() = default;

Result<Page> Page::FromBytes(std::string_view bytes, uint64_t seed) {
  if (bytes.size() != kPageSize) {
    return Status::Corruption("page image has wrong size " + std::to_string(bytes.size()));
  }
  uint64_t stored_checksum = ReadU64(bytes, 0);
  uint64_t actual = HashBytes(bytes.data() + 8, kPageSize - 8, ChecksumBasis(seed));
  if (stored_checksum != actual) {
    return Status::Corruption("page checksum mismatch");
  }
  Page page;
  page.slot_count_ = ReadU32(bytes, 8);
  page.free_offset_ = ReadU32(bytes, 12);
  size_t dir_end = kHeaderSize + static_cast<size_t>(page.slot_count_) * kSlotEntrySize;
  if (page.slot_count_ > (kPageSize - kHeaderSize) / kSlotEntrySize ||
      page.free_offset_ > kPageSize - dir_end) {
    return Status::Corruption("page header out of bounds");
  }
  page.slots_.reserve(page.slot_count_);
  for (uint32_t i = 0; i < page.slot_count_; ++i) {
    size_t entry = kHeaderSize + static_cast<size_t>(i) * kSlotEntrySize;
    Slot slot{ReadU32(bytes, entry), ReadU32(bytes, entry + 4)};
    if (slot.length > 0 &&
        (slot.offset > page.free_offset_ || slot.length > page.free_offset_ - slot.offset)) {
      return Status::Corruption("slot " + std::to_string(i) + " out of bounds");
    }
    page.slots_.push_back(slot);
  }
  page.data_.assign(bytes.substr(dir_end, page.free_offset_));
  return page;
}

std::string Page::ToBytes(uint64_t seed) const {
  std::string body;
  body.reserve(kPageSize - 8);
  PutU32(slot_count_, &body);
  PutU32(free_offset_, &body);
  for (const Slot& slot : slots_) {
    PutU32(slot.offset, &body);
    PutU32(slot.length, &body);
  }
  body.append(data_);
  body.resize(kPageSize - 8, '\0');
  std::string out;
  out.reserve(kPageSize);
  PutU64(HashBytes(body.data(), body.size(), ChecksumBasis(seed)), &out);
  out.append(body);
  return out;
}

size_t Page::FreeSpace() const {
  size_t used = kHeaderSize + slots_.size() * kSlotEntrySize + data_.size();
  size_t need_for_next = kSlotEntrySize;  // the next record's directory entry
  return used + need_for_next >= kPageSize ? 0 : kPageSize - used - need_for_next;
}

Result<uint32_t> Page::AddRecord(std::string_view record) {
  if (record.empty()) {
    return Status::Invalid("empty records are reserved for tombstones");
  }
  if (record.size() > FreeSpace()) {
    return Status::CapacityError("record of " + std::to_string(record.size()) +
                                 " bytes exceeds page free space " +
                                 std::to_string(FreeSpace()));
  }
  Slot slot{static_cast<uint32_t>(data_.size()), static_cast<uint32_t>(record.size())};
  data_.append(record);
  free_offset_ = static_cast<uint32_t>(data_.size());
  slots_.push_back(slot);
  slot_count_ = static_cast<uint32_t>(slots_.size());
  return slot_count_ - 1;
}

Result<std::string_view> Page::GetRecord(uint32_t slot) const {
  if (slot >= slots_.size()) {
    return Status::OutOfRange("slot " + std::to_string(slot) + " of " +
                              std::to_string(slots_.size()));
  }
  if (slots_[slot].length == 0) {
    return Status::NotFound("slot " + std::to_string(slot) + " is deleted");
  }
  return std::string_view(data_).substr(slots_[slot].offset, slots_[slot].length);
}

Status Page::DeleteRecord(uint32_t slot) {
  if (slot >= slots_.size()) {
    return Status::OutOfRange("slot " + std::to_string(slot) + " of " +
                              std::to_string(slots_.size()));
  }
  slots_[slot].length = 0;
  return Status::OK();
}

}  // namespace xst
