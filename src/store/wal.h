// Wal: a physical redo log with group commit.
//
// The store's durability story (DESIGN.md §14): every page mutated by an
// operation is captured as a full checksummed page image in a sidecar log
// file (`<store>.wal`), a commit record seals the transaction, and only
// then is the caller acknowledged — after the log has been fsynced. The
// main page file is written exclusively at checkpoint (and by recovery),
// so an in-place B+tree node rewrite or superblock swap can never reach
// disk ahead of its commit record: write-ahead ordering by construction,
// not by careful sequencing (a no-steal, redo-only protocol).
//
// Log layout:
//   header (40 bytes)  magic, version, epoch, base LSN, seeded checksum
//   record frame       [u32 body_len][u64 lsn][u64 crc][body]
//   body               [u8 type][varint txn_id][payload]
//     kPageImage       payload = varint page_id + kPageSize image bytes
//     kCommit          payload empty — seals every prior image of txn_id
//
// LSNs increase by one per record and are monotone across segment resets
// (the header's base LSN carries the numbering forward), so "durable up to
// LSN x" is meaningful for the whole life of the store. The crc seeds with
// (epoch, lsn): a record from a recycled segment generation can never
// validate at the same offset of the next one.
//
// Group commit: committers call AppendCommit() under the store's lock
// (buffer append only — no I/O), then WaitDurable(lsn) after releasing it.
// The first waiter becomes the flush leader: it takes the buffered bytes
// and a reserved file offset, writes + fsyncs without holding the lock,
// publishes the new durable LSN and wakes everyone (xst::CondVar). Commits
// that arrive while a flush is in flight batch into the next one — the
// `wal.group_commit.batch_size` histogram records commits per fsync. A
// failed flush poisons the device stickily; every waiter it stranded gets
// the error, and the store falls back to RecoverResidentFromDisk().
//
// Recovery: Open() scans the committed prefix — frames are valid while the
// length fits, the crc matches, and LSNs run contiguously; the scan stops
// at the first violation (a torn tail) and truncates it, along with any
// trailing committed-but-unsealed records. The surviving image set (last
// image per page, in commit order) is exactly the committed prefix of the
// mutation history; SetStore replays it into the main file and resets the
// log. An unreadable or half-written header is treated as an empty log —
// the header is only ever (re)written when the main file is self-contained
// (segment creation and post-checkpoint reset), so nothing is lost.
//
// Thread safety: one internal Mutex guards all log state. The store's lock
// ordering is SetStore::mu_ → Wal::mu_ (appends run under both, waits take
// only the WAL's), which the lock-order lint sees as acyclic. The file
// handle is touched by at most one thread at a time: the single active
// flush leader, or any caller while `flusher_active_` is false and the
// lock is held (Reset, recovery).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/sync.h"
#include "src/store/file.h"
#include "src/store/page.h"

namespace xst {

namespace internal {

// Registry names of the process-wide WAL metrics: records appended, commit
// records sealed, commits acknowledged per fsync (the group-commit batch
// size), checkpoints completed and failed, and page images replayed by
// recovery.
inline constexpr const char* kWalAppendsCounter = "wal.appends";
inline constexpr const char* kWalCommitsCounter = "wal.commits";
inline constexpr const char* kWalBatchSizeHistogram = "wal.group_commit.batch_size";
inline constexpr const char* kWalCheckpointsCounter = "wal.checkpoints";
inline constexpr const char* kWalCheckpointFailuresCounter = "wal.checkpoint.failures";
inline constexpr const char* kWalRecoveryReplayedCounter = "wal.recovery.replayed";

}  // namespace internal

/// \brief Snapshot of a Wal's segment and durability state (xstctl stats).
struct WalStats {
  uint64_t segment = 0;             ///< segment generation (header epoch)
  uint64_t segment_bytes = 0;       ///< bytes appended to the current segment
  uint64_t durable_lsn = 0;         ///< highest fsynced LSN
  uint64_t appended_lsn = 0;        ///< highest buffered LSN
  uint64_t last_checkpoint_lsn = 0; ///< LSN the current segment was based on
};

struct WalOptions {
  /// \brief Opens the log file; StdioFile::Open when unset. SetStore passes
  /// its own factory through, so fault injection covers the log too.
  FileFactory file_factory;
};

/// \brief The write-ahead log. See the file comment for the protocol.
class Wal {
 public:
  /// \brief Opens (creating if needed) the log at `path` and scans its
  /// committed prefix: after Open, TakeRecoveredImages() holds the page
  /// images a crash left unapplied, and appends continue after the last
  /// committed record (any torn or unsealed tail has been truncated away).
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           WalOptions options = {});

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// \brief The committed-but-unapplied page images found by Open(), in
  /// page order (last image per page — redo is idempotent, order across
  /// pages is immaterial). Non-empty exactly when the previous process
  /// crashed after a commit fsync but before the next checkpoint. The
  /// caller replays them into the main file, fsyncs it, then Reset()s the
  /// log; calling this moves the map out (second call returns empty).
  std::map<uint32_t, std::string> TakeRecoveredImages() XST_EXCLUDES(mu_);

  /// \brief Opens a transaction: subsequent LogPageImage calls are staged
  /// under one txn id until AppendCommit or AbortTxn. One transaction at a
  /// time (the store's lock already serializes mutations).
  void BeginTxn() XST_EXCLUDES(mu_);

  /// \brief Appends a page-image record for the open transaction. `image`
  /// must be the page's full kPageSize serialization (Page::ToBytes seeded
  /// by the page id). Buffer-only: durability comes from WaitDurable.
  Status LogPageImage(uint32_t page_id, std::string image) XST_EXCLUDES(mu_);

  /// \brief Seals the open transaction with a commit record and publishes
  /// its images to the resident (appended-committed) table. Returns the
  /// commit LSN to pass to WaitDurable.
  Result<uint64_t> AppendCommit() XST_EXCLUDES(mu_);

  /// \brief Drops the open transaction's staged images. The appended
  /// records stay in the buffer/file but carry no commit record, so replay
  /// ignores them.
  void AbortTxn() XST_EXCLUDES(mu_);

  /// \brief Blocks until `lsn` is fsynced (group commit; see file comment).
  /// Returns the flush error if the device died before reaching `lsn`.
  Status WaitDurable(uint64_t lsn) XST_EXCLUDES(mu_);

  /// \brief WaitDurable for everything appended so far.
  Status FlushAll() XST_EXCLUDES(mu_);

  /// \brief Latest appended image of `page_id` (open txn first, then
  /// committed), if the log holds one. The pager's read-through.
  bool LookupPage(uint32_t page_id, std::string* image) const XST_EXCLUDES(mu_);

  /// \brief Copy of the committed-resident image table (checkpoint source).
  /// Must not be called with a transaction open.
  std::map<uint32_t, std::string> SnapshotResident() const XST_EXCLUDES(mu_);

  /// \brief One past the highest page id the log holds an image for
  /// (0 when empty) — the pager's lower bound on logical page count when
  /// the main file lags the log.
  uint32_t PageCountLowerBound() const XST_EXCLUDES(mu_);

  /// \brief Recycles the segment after a checkpoint: truncates the file,
  /// writes a fresh header (epoch + 1, LSN numbering continued), fsyncs,
  /// and clears the resident table. Caller guarantees the buffer is
  /// durable (FlushAll) and the main file is fsynced first. In-memory
  /// epoch/LSN state advances only once the fresh header is durable; on
  /// failure the on-disk segment is in an unknown state, so the device is
  /// poisoned stickily (appends and commits fail until reopen — continuing
  /// would acknowledge commits a crash-recovery scan must CRC-reject) while
  /// the resident table is kept, so reads of the checkpointed state keep
  /// working.
  Status Reset(uint64_t checkpoint_lsn) XST_EXCLUDES(mu_);

  /// \brief After a failed commit fsync: rebuilds the resident table from
  /// the on-disk committed prefix, discarding buffered/staged state that
  /// never reached the device, and un-poisons the device (a still-dead
  /// device will re-poison on the next append). Un-poisoning first checks
  /// that the on-disk segment header still matches the in-memory
  /// generation — after an interrupted Reset it does not, and the log
  /// stays poisoned. The store pairs this with a fresh pager so resident
  /// state equals the durable prefix exactly.
  Status RecoverResidentFromDisk() XST_EXCLUDES(mu_);

  /// \brief Number of page images recovered by Open() (before the move).
  size_t recovered_image_count() const XST_EXCLUDES(mu_);

  WalStats stats() const XST_EXCLUDES(mu_);

 private:
  struct FlushJob {
    std::string batch;
    uint64_t upto = 0;
    uint64_t commits = 0;
    uint64_t offset = 0;
  };

  Wal(std::unique_ptr<File> file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}

  // Truncates the file and writes + fsyncs a fresh header for the given
  // generation. Pure device I/O — no member state is touched, so callers
  // decide what a failure means (Reset poisons; InitSegment propagates).
  Status WriteFreshSegment(uint64_t epoch, uint64_t base_lsn) XST_REQUIRES(mu_);
  Status InitSegment() XST_REQUIRES(mu_);
  // OK iff the on-disk header exists, validates, and carries the in-memory
  // epoch_/base_lsn_ — the precondition for trusting a rescan of the file.
  Status CheckSegmentHeader() XST_REQUIRES(mu_);
  // Scans committed records with LSN ≤ limit_lsn into *resident and trims
  // the rest. Open passes no limit (everything on disk survived a restart);
  // RecoverResidentFromDisk passes the durable LSN, so bytes a failed fsync
  // left behind are discarded rather than resurrected. If the trim itself
  // fails, the log stays poisoned: appending over an untrimmed same-epoch
  // tail could let a crash stitch old and new records into one chain.
  Status ScanCommittedPrefix(std::map<uint32_t, std::string>* resident,
                             uint64_t limit_lsn) XST_REQUIRES(mu_);
  void AppendRecord(uint8_t type, uint64_t txn_id, std::string_view payload)
      XST_REQUIRES(mu_);
  Status WriteBatch(const FlushJob& job);  // file I/O; no lock, single flusher

  // The file handle: exclusively the flush leader's while flusher_active_,
  // otherwise any caller holding mu_. Not annotatable as either alone.
  std::unique_ptr<File> file_;
  const std::string path_;

  mutable Mutex mu_ XST_LOCK_RANK(30);
  CondVar cv_;

  uint64_t epoch_ XST_GUARDED_BY(mu_) = 0;
  uint64_t base_lsn_ XST_GUARDED_BY(mu_) = 0;
  uint64_t appended_lsn_ XST_GUARDED_BY(mu_) = 0;
  uint64_t durable_lsn_ XST_GUARDED_BY(mu_) = 0;
  uint64_t last_checkpoint_lsn_ XST_GUARDED_BY(mu_) = 0;
  uint64_t file_bytes_ XST_GUARDED_BY(mu_) = 0;  // reserved file end offset

  std::string buffer_ XST_GUARDED_BY(mu_);       // appended, not yet handed to a flush
  uint64_t buffered_commits_ XST_GUARDED_BY(mu_) = 0;
  bool flusher_active_ XST_GUARDED_BY(mu_) = false;
  bool device_failed_ XST_GUARDED_BY(mu_) = false;
  Status flush_error_ XST_GUARDED_BY(mu_);

  bool txn_open_ XST_GUARDED_BY(mu_) = false;
  uint64_t txn_id_ XST_GUARDED_BY(mu_) = 0;
  // Latest image per page: staged by the open txn / committed ("resident").
  std::map<uint32_t, std::string> staged_ XST_GUARDED_BY(mu_);
  std::map<uint32_t, std::string> resident_ XST_GUARDED_BY(mu_);

  std::map<uint32_t, std::string> recovered_ XST_GUARDED_BY(mu_);
  size_t recovered_count_ XST_GUARDED_BY(mu_) = 0;
};

}  // namespace xst
